"""Standard instrumentation of the PProx stack.

All helpers here are duck-typed (no imports from ``repro.proxy`` /
``repro.lrs`` / ``repro.workload``, so the telemetry package never
participates in an import cycle) and callback-based: instruments read
the counters the components already maintain, at collect time only.
The single hot-path exceptions are the shuffle flush-size histogram
(one ``observe`` per batch flush) and the client latency histogram
(one per completed call) — both far off the per-message fast path.

Metric naming convention: ``pprox_<subsystem>_<quantity>[_total]``
with role/instance labels, e.g.
``pprox_proxy_requests_total{instance="pprox-ua-0",role="ua"}``.

The privacy-health gauges surface the paper's §4.3 guarantee live:

* ``pprox_shuffle_batch_fill`` — mean size of the most recent flush
  across all shuffle buffers (the effective ``S``; timer-expired
  flushes drag it below the configured size);
* ``pprox_effective_anonymity_set`` — fill × number of IA instances,
  the ``S·I`` bound on the adversary's correlation probability
  ``1/(S·I)``;
* ``pprox_shuffle_time_to_flush_seconds`` — worst-case residual wait
  until a pending batch is forced out by its timer.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

__all__ = [
    "instrument_service",
    "instrument_crypto",
    "instrument_lrs",
    "instrument_injector",
    "instrument_network",
    "instrument_recovery",
    "instrument_overload",
    "instrument_rotation",
    "instrument_stack",
]


def _shuffle_buffers(service: Any) -> List[Any]:
    buffers = [instance.request_buffer for instance in service.ua_instances]
    buffers += [instance.response_buffer for instance in service.ia_instances]
    return [buffer for buffer in buffers if buffer is not None]


def instrument_service(telemetry: Any, service: Any) -> None:
    """Register instruments over a :class:`PProxService` deployment."""
    registry = telemetry.registry

    for role, instances in (("ua", service.ua_instances), ("ia", service.ia_instances)):
        for instance in instances:
            labels = {"role": role, "instance": instance.name}
            registry.counter(
                "pprox_proxy_requests_total",
                "Requests transformed and forwarded by a proxy instance.",
                labels,
                callback=lambda inst=instance: inst.requests_processed,
            )
            registry.counter(
                "pprox_proxy_responses_total",
                "Responses transformed on the return path.",
                labels,
                callback=lambda inst=instance: inst.responses_processed,
            )
            registry.gauge(
                "pprox_proxy_pending",
                "Outstanding work at a proxy instance (queue+routing+buffer).",
                labels,
                callback=lambda inst=instance: inst.pending,
            )
            registry.gauge(
                "pprox_node_utilization_ratio",
                "Fraction of host-node core time spent busy.",
                labels,
                callback=lambda inst=instance: inst.node.utilization(),
            )
            registry.gauge(
                "pprox_node_queue_length",
                "Jobs waiting for a free core on the host node.",
                labels,
                callback=lambda inst=instance: inst.node.queue_length,
            )
            registry.counter(
                "pprox_enclave_ecalls_total",
                "Enclave entry transitions (sealed-secret accesses).",
                labels,
                callback=lambda inst=instance: inst.enclave.ecall_count,
            )
            registry.counter(
                "pprox_enclave_ocalls_total",
                "Enclave exit transitions (outbound sends).",
                labels,
                callback=lambda inst=instance: getattr(inst.enclave, "ocall_count", 0),
            )
            registry.gauge(
                "pprox_instance_up",
                "1 while the proxy instance is alive, 0 after a crash.",
                labels,
                callback=lambda inst=instance: 1 if inst.alive else 0,
            )

    for balancer in (service.ua_balancer, service.ia_balancer):
        registry.counter(
            "pprox_lb_decisions_total",
            "Pick decisions made by a load balancer.",
            {"balancer": balancer.name},
            callback=lambda lb=balancer: lb.decisions,
        )

    buffers = _shuffle_buffers(service)
    for buffer in buffers:
        labels = {"buffer": buffer.name}
        registry.counter(
            "pprox_shuffle_flushes_total",
            "Shuffle batch flushes (size-triggered and timer-triggered).",
            labels,
            callback=lambda buf=buffer: buf.flushes,
        )
        registry.counter(
            "pprox_shuffle_timer_flushes_total",
            "Shuffle flushes forced by timeout before the batch filled.",
            labels,
            callback=lambda buf=buffer: buf.timer_flushes,
        )
        registry.gauge(
            "pprox_shuffle_occupancy",
            "Entries currently sitting in a shuffle buffer.",
            labels,
            callback=lambda buf=buffer: buf.pending,
        )

    flush_hist = registry.histogram(
        "pprox_shuffle_flush_size",
        "Distribution of shuffle batch sizes at flush time.",
        buckets=(1, 2, 4, 8, 16, 32, 64, 128),
    )
    for buffer in buffers:
        buffer.on_flush = lambda size, timer_fired, hist=flush_hist: hist.observe(size)

    # -- live privacy-health gauges (§4.3) ------------------------------

    def batch_fill() -> float:
        sizes = [
            buffer.last_flush_size
            for buffer in _shuffle_buffers(service)
            if buffer.last_flush_size is not None
        ]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    registry.gauge(
        "pprox_shuffle_batch_fill",
        "Mean size of the most recent shuffle flush (effective S).",
        callback=batch_fill,
    )
    registry.gauge(
        "pprox_effective_anonymity_set",
        "Effective anonymity set S*I bounding correlation probability 1/(S*I).",
        callback=lambda: batch_fill() * max(1, len(service.ia_instances)),
    )

    def time_to_flush() -> float:
        now = telemetry.now()
        waits = [
            buffer.time_to_flush(now)
            for buffer in _shuffle_buffers(service)
            if buffer.time_to_flush(now) is not None
        ]
        return max(waits) if waits else 0.0

    registry.gauge(
        "pprox_shuffle_time_to_flush_seconds",
        "Longest residual wait until a pending batch is timer-flushed.",
        callback=time_to_flush,
    )


def instrument_crypto(telemetry: Any, provider: Any) -> None:
    """Register pseudonym-memo cache instruments (one stats call per tick).

    Providers without ``cache_stats()`` (fast/sim tiers) are skipped.
    """
    if not callable(getattr(provider, "cache_stats", None)):
        return
    registry = telemetry.registry
    # All six instruments read one snapshot per virtual instant: the
    # memo is keyed on telemetry.now(), so a scrape tick (or a render)
    # costs a single cache_stats() call, not one per instrument.
    memo: Dict[str, Any] = {"at": None, "stats": None}

    def stats() -> Dict[str, Dict[str, int]]:
        now = telemetry.now()
        if memo["at"] != now:
            memo["stats"] = provider.cache_stats()
            memo["at"] = now
        return memo["stats"]

    for operation in ("pseudonymize", "depseudonymize"):
        labels = {"operation": operation}
        registry.counter(
            "pprox_crypto_cache_hits_total",
            "Pseudonym-memo cache hits.",
            labels,
            callback=lambda op=operation: stats()[op]["hits"],
        )
        registry.counter(
            "pprox_crypto_cache_misses_total",
            "Pseudonym-memo cache misses.",
            labels,
            callback=lambda op=operation: stats()[op]["misses"],
        )
        registry.gauge(
            "pprox_crypto_cache_size",
            "Entries currently memoized.",
            labels,
            callback=lambda op=operation: stats()[op]["size"],
        )


def instrument_lrs(telemetry: Any, lrs: Any) -> None:
    """Register request counters over an LRS stub or Harness service."""
    registry = telemetry.registry
    frontends = getattr(lrs, "frontends", None)
    backends: Iterable[Any] = frontends if frontends else (lrs,)
    for backend in backends:
        if not hasattr(backend, "requests_served"):
            continue
        registry.counter(
            "pprox_lrs_requests_total",
            "Recommendation requests served by an LRS backend.",
            {"backend": getattr(backend, "address", "lrs")},
            callback=lambda be=backend: be.requests_served,
        )


def instrument_injector(telemetry: Any, injector: Any) -> None:
    """Register workload counters and the end-to-end latency histogram."""
    registry = telemetry.registry
    report = injector.report
    for quantity in ("issued", "completed", "failed"):
        registry.counter(
            f"pprox_workload_{quantity}_total",
            f"Calls {quantity} by the workload injector.",
            callback=lambda rep=report, q=quantity: getattr(rep, q),
        )
    latency_hist = registry.histogram(
        "pprox_request_latency_seconds",
        "End-to-end client-observed request latency.",
    )
    if hasattr(injector, "latency_observer"):
        injector.latency_observer = latency_hist.observe


def instrument_network(telemetry: Any, network: Any) -> None:
    """Register aggregate traffic counters over the simulated network."""
    registry = telemetry.registry
    registry.counter(
        "pprox_network_messages_total",
        "Messages delivered by the simulated network.",
        callback=lambda: network.messages_sent,
    )
    registry.counter(
        "pprox_network_bytes_total",
        "Serialized payload bytes carried by the simulated network.",
        callback=lambda: network.bytes_sent,
    )
    registry.counter(
        "pprox_network_dropped_total",
        "Messages lost to injected faults (partitions, loss windows).",
        callback=lambda: network.messages_dropped,
    )


def instrument_recovery(
    telemetry: Any,
    *,
    monitor: Any = None,
    client: Any = None,
    supervisor: Any = None,
) -> None:
    """Register failover/recovery instruments over the chaos plumbing.

    *monitor* is a :class:`repro.cluster.health.HealthMonitor` (which
    also feeds the ``pprox_recovery_seconds`` histogram directly, at
    readmission time), *client* a :class:`repro.client.library.
    PProxClient` with per-call outcome counters, *supervisor* a
    :class:`repro.faults.supervisor.FaultSupervisor`.
    """
    registry = telemetry.registry
    if monitor is not None:
        registry.counter(
            "pprox_failovers_total",
            "Dead backends ejected from a load balancer by health probes.",
            callback=lambda: monitor.failovers,
        )
        registry.counter(
            "pprox_readmissions_total",
            "Recovered backends readmitted to a load balancer.",
            callback=lambda: len(monitor.readmitted),
        )
    if client is not None:
        for outcome in getattr(client, "outcomes", {}):
            registry.counter(
                "pprox_request_outcome_total",
                "Completed client calls by outcome class.",
                {"outcome": outcome},
                callback=lambda cl=client, oc=outcome: cl.outcomes[oc],
            )
        registry.counter(
            "pprox_client_retryable_errors_total",
            "Retryable error responses seen by the client library.",
            callback=lambda: client.retryable_errors,
        )
        registry.counter(
            "pprox_client_hedges_total",
            "Hedged attempts launched by the client library.",
            callback=lambda: client.hedges_launched,
        )
    if supervisor is not None:
        registry.counter(
            "pprox_faults_injected_total",
            "Enclave crashes injected by the fault supervisor.",
            {"kind": "crash"},
            callback=lambda: supervisor.crashes_injected,
        )
        registry.counter(
            "pprox_fault_windows_total",
            "Network/LRS fault windows opened by the fault supervisor.",
            callback=lambda: supervisor.windows_opened,
        )
        registry.counter(
            "pprox_fault_restarts_total",
            "Crashed instances restarted (re-attested, re-provisioned).",
            callback=lambda: supervisor.restarts_completed,
        )


def instrument_overload(telemetry: Any, *, service: Any = None, guard: Any = None) -> None:
    """Register overload-protection instruments.

    *service* is a :class:`PProxService` whose instances may carry a
    bounded ingress queue (overload mode) — or legacy unbounded ones,
    flagged by the ``pprox_queue_unbounded`` warning gauge.  *guard* is
    a :class:`repro.overload.guard.GuardedLrs` wrapping the LRS edge.

    Shed volumes and sojourn/deadline distributions are push-style
    (observer hooks set on the instances); everything else is read via
    collect-time callbacks.  Labels carry role/instance/stage/reason
    only — never user or item identifiers — so every series passes the
    role-aware redaction audit unscrubbed.
    """
    registry = telemetry.registry
    if service is not None:
        sojourn_hist = registry.histogram(
            "pprox_queue_sojourn_seconds",
            "Time admitted requests spent waiting in a bounded ingress queue.",
            buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5),
        )
        deadline_hist = registry.histogram(
            "pprox_deadline_remaining_seconds",
            "Budget remaining on requests as they arrive at a proxy layer.",
            buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        )
        for role, instances in (
            ("ua", service.ua_instances),
            ("ia", service.ia_instances),
        ):
            for instance in instances:
                labels = {"role": role, "instance": instance.name}

                def on_shed(
                    stage: str,
                    reason: str,
                    _labels: Dict[str, str] = labels,
                ) -> None:
                    registry.counter(
                        "pprox_shed_total",
                        "Requests shed by the overload-protection subsystem.",
                        {**_labels, "stage": stage, "reason": reason},
                    ).inc()

                instance.shed_observer = on_shed
                instance.deadline_observer = deadline_hist.observe
                queue = getattr(instance, "ingress", None)
                registry.gauge(
                    "pprox_queue_unbounded",
                    "1 when an instance still runs a legacy unbounded ingress "
                    "queue (no overload protection), 0 when bounded.",
                    labels,
                    callback=lambda inst=instance: (
                        1 if inst.ingress is None or inst.ingress.unbounded else 0
                    ),
                )
                if queue is None:
                    continue
                registry.gauge(
                    "pprox_queue_depth",
                    "Entries waiting in a bounded ingress queue.",
                    labels,
                    callback=lambda inst=instance: (
                        inst.ingress.depth if inst.ingress is not None else 0
                    ),
                )
                queue.on_pop = sojourn_hist.observe
    if guard is not None:
        registry.gauge(
            "pprox_breaker_state",
            "IA->LRS circuit-breaker state (0 closed / 1 open / 2 half-open).",
            callback=lambda: guard.breaker.state,
        )
        registry.counter(
            "pprox_breaker_trips_total",
            "Times the IA->LRS circuit breaker opened.",
            callback=lambda: guard.breaker.trips,
        )
        registry.gauge(
            "pprox_limiter_limit",
            "Current AIMD concurrency limit on the IA->LRS edge.",
            callback=lambda: guard.limiter.limit,
        )
        for reason, attribute in (
            ("breaker", "breaker_rejections"),
            ("limiter", "limiter_rejections"),
            ("deadline", "expired_rejections"),
        ):
            registry.counter(
                "pprox_shed_total",
                "Requests shed by the overload-protection subsystem.",
                {"role": "lrs", "stage": "lrs_guard", "reason": reason},
                callback=lambda g=guard, attr=attribute: getattr(g, attr),
            )


def instrument_rotation(telemetry: Any, rotation: Any) -> None:
    """Register epoch-rotation drill instruments.

    *rotation* is a :class:`repro.proxy.epochs.RotationCoordinator`
    (duck-typed).  All instruments are collect-time callbacks over the
    coordinator's own bookkeeping — nothing here touches the request
    path — and labels carry only the rotating layer name, never key
    material or identifiers, so every series passes the redaction
    audit unscrubbed.
    """
    registry = telemetry.registry
    labels = {"layer": rotation.layer}
    registry.gauge(
        "pprox_rotation_state",
        "Rotation drill state (index into ROTATION_STATES; reports the "
        "'paused' index while the drill is stalled).",
        labels,
        callback=lambda: rotation.state_code,
    )
    registry.gauge(
        "pprox_rekey_progress_ratio",
        "Fraction of the pre-announce LRS prefix re-encrypted under the "
        "new epoch (cut-over barrier reaches 1.0).",
        labels,
        callback=lambda: rotation.progress_ratio,
    )
    registry.gauge(
        "pprox_dual_epoch_window_seconds",
        "How long the dual-epoch acceptance window has been open "
        "(0 before the announce; frozen at retirement).",
        labels,
        callback=lambda: rotation.dual_window_seconds,
    )
    registry.counter(
        "pprox_rotation_pauses_total",
        "Times the drill paused rather than risk the anonymity floor "
        "(instance down, thin flush, or overload).",
        labels,
        callback=lambda: rotation.pauses,
    )
    registry.counter(
        "pprox_epoch_reprovisions_total",
        "Stale alive enclaves healed by the coordinator's idempotent "
        "re-announce (missed-announcement / partition path).",
        labels,
        callback=lambda: rotation.reprovisions,
    )


def instrument_stack(
    telemetry: Any,
    *,
    service: Any = None,
    provider: Any = None,
    lrs: Any = None,
    injector: Any = None,
    network: Any = None,
    monitor: Any = None,
    client: Any = None,
    supervisor: Any = None,
    guard: Any = None,
    rotation: Any = None,
) -> None:
    """Instrument whichever stack components the caller has on hand."""
    if service is not None:
        instrument_service(telemetry, service)
    if provider is not None:
        instrument_crypto(telemetry, provider)
    if lrs is not None:
        instrument_lrs(telemetry, lrs)
    if injector is not None:
        instrument_injector(telemetry, injector)
    if network is not None:
        instrument_network(telemetry, network)
    if monitor is not None or client is not None or supervisor is not None:
        instrument_recovery(
            telemetry, monitor=monitor, client=client, supervisor=supervisor
        )
    if service is not None or guard is not None:
        instrument_overload(telemetry, service=service, guard=guard)
    if rotation is not None:
        instrument_rotation(telemetry, rotation)
