"""The privacy boundary of the telemetry layer.

PProx's adversary (§2.3 / §4) observes *every* network flow; the whole
point of the UA/IA split is that no single vantage point links a user
id to an item id.  Telemetry is a vantage point too: if UA-side spans
carried item ids, or IA-side spans user ids, the operator's log
aggregator would reassemble exactly the correlation the proxies exist
to destroy.  This module enforces the split at emission time:

* events attributed to the ``ua`` role may never contain item ids;
* events attributed to the ``ia`` role may never contain user ids;
* events attributed to the ``lrs`` role may contain neither in the
  clear (the LRS only ever sees pseudonyms);
* ``client`` and ``operator`` events are unrestricted — the client
  library legitimately knows both sides of its own requests.

Violating values are replaced by ``[redacted:<kind>]`` markers and the
violation is recorded, so the audit (:func:`audit_events`) can both
fail loudly in tests and prove cleanliness on the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

__all__ = ["RedactionPolicy", "Violation", "audit_events", "DEFAULT_POLICY"]

# Identifier shapes used across the repo.  Users come from the
# MovieLens loader (``user-{N}``) and clients are addressed
# ``client-{user}``; items are ``movie-{N}`` (MovieLens), ``item-{N}``
# (synthetic), or ``static-item-{NN}`` (the stub LRS catalogue).
USER_MARKERS: Tuple[str, ...] = ("user-", "client-")
ITEM_MARKERS: Tuple[str, ...] = ("static-item-", "item-", "movie-")
# Causal-trace wire ids (repro.obs.tracewire) are "tw:" + 13 hex chars.
# They are severed at the UA front door; a post-shuffle span or event
# carrying one would re-link a client request across the shuffler, so
# they are treated as an identifier class of their own.
TRACE_MARKERS: Tuple[str, ...] = ("tw:",)

# Field names that denote an identifier even when the value itself is
# opaque (e.g. an already-encrypted blob stored under key "user").
# "trace" matches the wire field only: the internal Tracer's integer
# ``trace_id`` span key is simulator bookkeeping that never rides a
# message and stays legal.
USER_KEYS = frozenset({"user", "user_id", "client", "client_address"})
ITEM_KEYS = frozenset({"item", "items", "item_id", "item_ids"})
TRACE_KEYS = frozenset({"trace"})

_REDACTED = {
    "user-id": "[redacted:user-id]",
    "item-id": "[redacted:item-id]",
    "trace-id": "[redacted:trace-id]",
}
_REDACTED_USER = _REDACTED["user-id"]
_REDACTED_ITEM = _REDACTED["item-id"]
_REDACTED_TRACE = _REDACTED["trace-id"]


@dataclass(frozen=True)
class Violation:
    """One leaked identifier caught (or detected) at the boundary."""

    role: str
    kind: str  # "user-id" | "item-id" | "trace-id"
    path: str  # dotted path into the event payload
    value: str

    def describe(self) -> str:
        return f"{self.kind} leak in {self.role!r} event at {self.path}: {self.value!r}"


def _marker_kind(value: str) -> str | None:
    """Classify a string as a user id, item id, or neither."""
    for marker in USER_MARKERS:
        if value.startswith(marker):
            return "user-id"
    for marker in ITEM_MARKERS:
        if value.startswith(marker):
            return "item-id"
    for marker in TRACE_MARKERS:
        if value.startswith(marker):
            return "trace-id"
    return None


@dataclass
class RedactionPolicy:
    """Role-aware scrubber applied to every emitted telemetry payload."""

    # role -> kinds of identifier that role must never emit
    forbidden: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "ua": ("item-id", "trace-id"),
            "ia": ("user-id", "trace-id"),
            "lrs": ("user-id", "item-id", "trace-id"),
        }
    )

    def forbidden_kinds(self, role: str) -> Tuple[str, ...]:
        return self.forbidden.get(role, ())

    def scrub(self, role: str, payload: Mapping[str, Any]) -> Tuple[Dict[str, Any], List[Violation]]:
        """Return a clean copy of *payload* plus the violations found."""
        kinds = self.forbidden_kinds(role)
        violations: List[Violation] = []
        if not kinds:
            return dict(payload), violations
        clean = self._scrub_value(role, kinds, payload, "", violations)
        return clean, violations

    # -- recursive walk -------------------------------------------------

    def _scrub_value(
        self,
        role: str,
        kinds: Tuple[str, ...],
        value: Any,
        path: str,
        violations: List[Violation],
    ) -> Any:
        if isinstance(value, Mapping):
            out: Dict[str, Any] = {}
            for key, sub in value.items():
                sub_path = f"{path}.{key}" if path else str(key)
                key_kind = self._key_kind(key)
                if key_kind is not None and key_kind in kinds:
                    violations.append(
                        Violation(role=role, kind=key_kind, path=sub_path, value=_preview(sub))
                    )
                    out[key] = _REDACTED[key_kind]
                    continue
                out[key] = self._scrub_value(role, kinds, sub, sub_path, violations)
            return out
        if isinstance(value, (list, tuple)):
            return [
                self._scrub_value(role, kinds, item, f"{path}[{i}]", violations)
                for i, item in enumerate(value)
            ]
        if isinstance(value, (bytes, bytearray)):
            # Ciphertext / sealed blobs: structurally opaque, keep only size.
            return f"<{len(value)} bytes>"
        if isinstance(value, str):
            kind = _marker_kind(value)
            if kind is not None and kind in kinds:
                violations.append(Violation(role=role, kind=kind, path=path, value=value))
                return _REDACTED[kind]
            return value
        return value

    @staticmethod
    def _key_kind(key: Any) -> str | None:
        if not isinstance(key, str):
            return None
        lowered = key.lower()
        if lowered in USER_KEYS:
            return "user-id"
        if lowered in ITEM_KEYS:
            return "item-id"
        if lowered in TRACE_KEYS:
            return "trace-id"
        return None


DEFAULT_POLICY = RedactionPolicy()


def audit_events(
    events: Iterable[Mapping[str, Any]],
    policy: RedactionPolicy | None = None,
) -> List[Violation]:
    """Re-scan emitted (or re-parsed) events for identifier leaks.

    This is the adversary's-eye check: it assumes nothing about how an
    event was produced and simply walks every payload with the role
    recorded on the event itself.  A clean pipeline returns ``[]``.
    """
    policy = policy or DEFAULT_POLICY
    found: List[Violation] = []
    for event in events:
        role = str(event.get("role", "unknown"))
        _, violations = policy.scrub(role, event)
        found.extend(violations)
    return found


def _preview(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 80 else text[:77] + "..."
