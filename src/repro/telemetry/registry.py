"""Metric registry: Counter/Gauge/Histogram with Prometheus exposition.

Instruments come in two flavours.  *Stateful* instruments are mutated
on the hot path (``inc``/``set``/``observe``).  *Callback* instruments
read an existing component counter (``node.queue_length``,
``balancer.decisions``, …) lazily at collect time — zero overhead per
simulated event, which is what keeps telemetry out of the perf
floor's way.

The :class:`Scraper` samples the registry on a virtual-time interval
(subsuming the old ``MetricsCollector`` loop), appending to each
instrument's :class:`TimeSeries` history and optionally emitting a
``metrics`` snapshot event to the structured log.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simnet.clock import EventHandle, EventLoop

__all__ = [
    "TimeSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Scraper",
    "DEFAULT_BUCKETS",
    "sanitize_metric_name",
]

# Latency-oriented defaults: the paper's interesting range is roughly
# 1 ms (crypto legs) to a few seconds (saturated tail).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary dotted name into a legal Prometheus name."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the text exposition format: backslash, quote, newline."""
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...], extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + inner + "}"


@dataclass
class TimeSeries:
    """One sampled metric: (time, value) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def last(self) -> Optional[float]:
        """Most recent value, or None before the first sample."""
        return self.points[-1][1] if self.points else None

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def maximum(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} has no samples")
        return max(values)

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} has no samples")
        return sum(values) / len(values)

    def window(self, start: float, end: float) -> List[float]:
        """Values sampled within ``[start, end]``."""
        return [value for time, value in self.points if start <= time <= end]


class _Instrument:
    """Common base: identity, help text, scraped history."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels: Tuple[Tuple[str, str], ...] = tuple(sorted((labels or {}).items()))
        self.series = TimeSeries(name=self.series_name())

    def series_name(self) -> str:
        return self.name + _format_labels(self.labels)

    def value(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def sample(self, now: float) -> None:
        self.series.append(now, float(self.value()))

    def exposition_lines(self) -> List[str]:
        label_text = _format_labels(self.labels)
        return [f"{self.name}{label_text} {_format_value(self.value())}"]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value(),
        }


class Counter(_Instrument):
    """Monotonically increasing count (or a callback over one)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0
        self.callback = callback

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._value


class Gauge(_Instrument):
    """Point-in-time value (or a callback over one)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0
        self.callback = callback

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._value


class Histogram(_Instrument):
    """Cumulative-bucket histogram with ``le``-inclusive boundaries.

    A value lands in every bucket whose upper bound is >= the value,
    matching Prometheus semantics (``le`` = less-than-or-equal).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = sorted(float(bound) for bound in buckets)
        if any(math.isnan(bound) for bound in bounds):
            raise ValueError("histogram bucket bounds must not be NaN")
        # An explicit +Inf bound is dropped: the overflow bucket is
        # always emitted exactly once, so exposition never produces a
        # duplicate le="+Inf" series (Prometheus parsers reject those).
        bounds = [bound for bound in bounds if math.isfinite(bound)]
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # Non-cumulative per-bucket counts; the +Inf bucket is implicit.
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[index] += 1
                return
        self._bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self._bucket_counts):
            running += bucket_count
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def value(self) -> float:
        # Scraped history tracks the observation count.
        return float(self.count)

    def exposition_lines(self) -> List[str]:
        lines: List[str] = []
        for bound, cumulative in self.cumulative_buckets():
            label_text = _format_labels(self.labels, {"le": _format_value(bound)})
            lines.append(f"{self.name}_bucket{label_text} {cumulative}")
        label_text = _format_labels(self.labels)
        lines.append(f"{self.name}_sum{label_text} {_format_value(self.sum)}")
        lines.append(f"{self.name}_count{label_text} {self.count}")
        return lines

    def snapshot(self) -> Dict[str, Any]:
        record = super().snapshot()
        record["sum"] = self.sum
        record["count"] = self.count
        record["buckets"] = [
            {"le": "+Inf" if bound == math.inf else bound, "count": cumulative}
            for bound, cumulative in self.cumulative_buckets()
        ]
        return record


class MetricRegistry:
    """Get-or-create instrument registry keyed on (name, labels)."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Instrument] = {}

    def _full_name(self, name: str) -> str:
        name = sanitize_metric_name(name)
        if self.namespace and not name.startswith(self.namespace + "_"):
            name = f"{self.namespace}_{name}"
        return name

    def _get_or_create(
        self,
        cls,
        name: str,
        help_text: str,
        labels: Optional[Dict[str, str]],
        **kwargs: Any,
    ) -> _Instrument:
        full = self._full_name(name)
        key = (full, tuple(sorted((labels or {}).items())))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {full!r} already registered as {existing.kind}, not {cls.kind}"
                )
            # Re-instrumentation across runs: adopt the fresh callback so
            # the instrument reads the new run's components.
            callback = kwargs.get("callback")
            if callback is not None:
                existing.callback = callback
            return existing
        instrument = cls(full, help_text, labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels, callback=callback)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels, callback=callback)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labels, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        return list(self._instruments.values())

    def get(self, name: str, labels: Optional[Dict[str, str]] = None) -> Optional[_Instrument]:
        key = (self._full_name(name), tuple(sorted((labels or {}).items())))
        return self._instruments.get(key)

    def sample_all(self, now: float) -> None:
        for instrument in self._instruments.values():
            instrument.sample(now)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [instrument.snapshot() for instrument in self._instruments.values()]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        by_name: "Dict[str, List[_Instrument]]" = {}
        for instrument in self._instruments.values():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: List[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            head = group[0]
            if head.help_text:
                lines.append(f"# HELP {name} {head.help_text}")
            lines.append(f"# TYPE {name} {head.kind}")
            for instrument in sorted(group, key=lambda ins: ins.labels):
                lines.extend(instrument.exposition_lines())
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class Scraper:
    """Virtual-time periodic sampler over a :class:`MetricRegistry`."""

    loop: EventLoop
    registry: MetricRegistry
    interval: float = 1.0
    event_log: Optional[Any] = None
    emit_snapshots: bool = False
    samples_taken: int = 0
    _handle: Optional[EventHandle] = None

    def bind(self, loop: EventLoop) -> None:
        """Re-point at a fresh run's loop; must be stopped first."""
        if self._handle is not None:
            self.stop()
        self.loop = loop

    def start(self) -> None:
        if self._handle is not None:
            return
        self._handle = self.loop.schedule(self.interval, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _tick(self) -> None:
        self._handle = None
        now = self.loop.now
        self.registry.sample_all(now)
        self.samples_taken += 1
        if self.event_log is not None and self.emit_snapshots:
            self.event_log.emit(
                "metrics",
                "operator",
                {"samples_taken": self.samples_taken, "metrics": self.registry.snapshot()},
            )
        # Reschedule only while the simulation has other live work: a
        # scraper that re-arms unconditionally would keep ``loop.run()``
        # from ever draining.  Once everything else is done the run is
        # over and the final registry state is what gets exported.
        if self.loop.pending > 0:
            self._handle = self.loop.schedule(self.interval, self._tick)
