"""Span-based tracing over the PProx pipeline, in virtual time.

One client request crosses six network hops::

    client -> UA -> IA -> LRS -> IA -> UA -> client
       t0     t1    t2     t3     t4    t5

The five paper stages are the deltas between consecutive hops —
``ua_inbound`` (t0→t1, includes shuffle wait), ``ia_inbound`` (t1→t2),
``lrs`` (t2→t3), ``ia_outbound`` (t3→t4, includes response shuffle),
``ua_outbound`` (t4→t5).  Components report each hop to the tracer at
the same virtual instant they call :meth:`Network.send`, so span
boundaries are *exactly* the wire timestamps a
:class:`~repro.simnet.tracing.BreakdownProbe` would observe — the two
must agree to float precision on the same run.

Trace context is keyed on ``request_id``, which is simulator
bookkeeping that never appears in a serialized message body: the §2.3
adversary cannot see it, so propagating it to the tracer adds zero
bytes to any observable flow.  Crucially, span *attributes* are still
pushed through the redaction boundary by role when spans are emitted
to the event log — a UA span annotated with an item id would be
scrubbed and flagged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.events import EventLog

__all__ = ["PIPELINE_STAGES", "Span", "Trace", "Tracer"]

# Stage names in pipeline order; identical to simnet.tracing.STAGES.
PIPELINE_STAGES: Tuple[str, ...] = (
    "ua_inbound",
    "ia_inbound",
    "lrs",
    "ia_outbound",
    "ua_outbound",
)

# (from_role, to_role) -> (stage closed by this hop, stage opened, role owning the opened stage)
_HOP_TRANSITIONS: Dict[Tuple[str, str], Tuple[Optional[str], Optional[str], Optional[str]]] = {
    ("client", "ua"): (None, "ua_inbound", "ua"),
    ("ua", "ia"): ("ua_inbound", "ia_inbound", "ia"),
    ("ia", "lrs"): ("ia_inbound", "lrs", "lrs"),
    ("lrs", "ia"): ("lrs", "ia_outbound", "ia"),
    ("ia", "ua"): ("ia_outbound", "ua_outbound", "ua"),
    ("ua", "client"): ("ua_outbound", None, None),
}


@dataclass
class Span:
    """One timed operation attributed to a role."""

    trace_id: int
    span_id: int
    name: str
    role: str
    start: float
    parent_id: Optional[int] = None
    end: Optional[float] = None
    status: str = "open"  # open | ok | error | abandoned
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        self.attributes.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "role": self.role,
            "start": self.start,
            "status": self.status,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.end is not None:
            record["end"] = self.end
            record["duration"] = self.duration
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record


@dataclass
class Trace:
    """All spans of one request: a root span plus one span per stage."""

    trace_id: int
    request_id: int
    root: Span
    stages: "OrderedDict[str, Span]" = field(default_factory=OrderedDict)
    open_stage: Optional[str] = None
    status: str = "open"

    def stage_durations(self) -> Dict[str, float]:
        """Durations of the closed stages, in pipeline order."""
        return {
            name: span.duration
            for name, span in self.stages.items()
            if span.end is not None
        }

    def is_complete(self) -> bool:
        return self.status == "ok" and all(
            name in self.stages and self.stages[name].end is not None
            for name in PIPELINE_STAGES
        )

    def total_duration(self) -> float:
        return self.root.duration


class Tracer:
    """Builds traces from hop reports, emits closed spans to the log.

    ``max_active`` bounds the in-flight table: requests that time out
    client-side (their reply is still in flight when the client gives
    up and retries under a fresh id) would otherwise pin their trace
    forever.  Overflowing traces are closed as ``abandoned``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        event_log: Optional[EventLog] = None,
        max_active: int = 8192,
        keep_spans: bool = True,
    ) -> None:
        self.clock = clock
        self.event_log = event_log
        self.max_active = max_active
        self.keep_spans = keep_spans
        self._active: "OrderedDict[int, Trace]" = OrderedDict()
        self.finished: List[Trace] = []
        self._next_trace_id = 1
        self._next_span_id = 1
        self.traces_started = 0
        self.traces_completed = 0
        self.traces_abandoned = 0
        self.hops_recorded = 0
        self.unknown_hops = 0

    # -- construction ----------------------------------------------------

    def bind(self, clock: Callable[[], float], event_log: Optional[EventLog] = None) -> None:
        """Re-point the tracer at a fresh run's clock (and log)."""
        self.clock = clock
        if event_log is not None:
            self.event_log = event_log

    def _new_span(
        self,
        trace_id: int,
        name: str,
        role: str,
        start: float,
        parent_id: Optional[int] = None,
    ) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            name=name,
            role=role,
            start=start,
            parent_id=parent_id,
        )
        self._next_span_id += 1
        return span

    def _start_trace(self, request_id: int, now: float) -> Trace:
        root = self._new_span(self._next_trace_id, "request", "client", now)
        trace = Trace(trace_id=self._next_trace_id, request_id=request_id, root=root)
        self._next_trace_id += 1
        self.traces_started += 1
        self._active[request_id] = trace
        if len(self._active) > self.max_active:
            _, evicted = self._active.popitem(last=False)
            self._finish(evicted, "abandoned", now)
        return trace

    # -- the hot path ----------------------------------------------------

    def record_hop(self, request_id: int, from_role: str, to_role: str) -> None:
        """Report a network send for *request_id* at the current instant.

        Called by the component issuing the send, in the same event
        callback, so ``clock()`` here equals the flow-record timestamp.
        """
        now = self.clock()
        self.hops_recorded += 1
        transition = _HOP_TRANSITIONS.get((from_role, to_role))
        if transition is None:
            self.unknown_hops += 1
            return
        closes, opens, open_role = transition

        trace = self._active.get(request_id)
        if trace is None:
            if closes is not None:
                # Mid-pipeline first sighting (e.g. tracer attached after
                # requests were already in flight): nothing to stitch.
                return
            trace = self._start_trace(request_id, now)
        else:
            self._active.move_to_end(request_id)

        if closes is not None and trace.open_stage == closes:
            span = trace.stages[closes]
            span.end = now
            span.status = "ok"
            trace.open_stage = None
            self._emit_span(span)
        if opens is not None and open_role is not None:
            span = self._new_span(trace.trace_id, opens, open_role, now, parent_id=trace.root.span_id)
            trace.stages[opens] = span
            trace.open_stage = opens

    def annotate(self, request_id: int, **attrs: Any) -> None:
        """Attach attributes to the stage span currently open for a request."""
        trace = self._active.get(request_id)
        if trace is None or trace.open_stage is None:
            return
        trace.stages[trace.open_stage].annotate(**attrs)

    def end_trace(self, request_id: int, ok: bool = True) -> Optional[Trace]:
        """Close a request's root span (called at client settle time)."""
        trace = self._active.pop(request_id, None)
        if trace is None:
            return None
        self._finish(trace, "ok" if ok else "error", self.clock())
        return trace

    def abandon(self, request_id: int) -> None:
        """Drop a request that will never complete (timeout/retry)."""
        trace = self._active.pop(request_id, None)
        if trace is not None:
            self._finish(trace, "abandoned", self.clock())

    def _finish(self, trace: Trace, status: str, now: float) -> None:
        if trace.open_stage is not None:
            dangling = trace.stages[trace.open_stage]
            dangling.status = "abandoned"
            trace.open_stage = None
        trace.root.end = now
        trace.root.status = status
        trace.status = status
        if status == "ok":
            self.traces_completed += 1
        elif status == "abandoned":
            self.traces_abandoned += 1
        self._emit_span(trace.root, trace=trace)
        if self.keep_spans:
            self.finished.append(trace)

    def _emit_span(self, span: Span, trace: Optional[Trace] = None) -> None:
        if self.event_log is None:
            return
        payload = span.to_dict()
        if trace is not None:
            payload["stage_durations"] = trace.stage_durations()
            payload["complete"] = trace.is_complete()
        self.event_log.emit("span", span.role, payload)

    # -- queries ---------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def complete_traces(self) -> List[Trace]:
        return [trace for trace in self.finished if trace.is_complete()]

    def complete_stage_durations(self) -> List[Dict[str, float]]:
        """Per-trace stage durations for every complete trace."""
        return [trace.stage_durations() for trace in self.complete_traces()]

    def stage_values(self) -> Dict[str, List[float]]:
        """Durations grouped by stage across all complete traces."""
        grouped: Dict[str, List[float]] = {name: [] for name in PIPELINE_STAGES}
        for durations in self.complete_stage_durations():
            for name in PIPELINE_STAGES:
                grouped[name].append(durations[name])
        return grouped
