"""Multi-tenant RaaS deployments (paper §6.3, "Assumption on traffic").

For low-traffic applications, shuffle buffers fill slowly and timer
flushes shrink the anonymity set.  The paper's proposed mitigation is
multi-tenancy: "use the same proxy layer for multiple applications,
thereby increasing the minimum traffic.  This comes, however, with
increased risks in case an enclave is broken, as secrets for multiple
applications could be stolen at once."

This package implements exactly that trade-off:

* one shared pair of proxy layers, whose enclaves are provisioned with
  *per-tenant* key material (every tenant's application generates and
  provisions its own keys after attesting the shared enclaves);
* requests carry a public ``tenant`` label (the application's
  identity is not a secret — the adversary sees which app a client
  talks to anyway) used to select keys and the tenant's own LRS;
* the blast-radius property the paper warns about is directly
  testable: breaking one shared enclave leaks *all* tenants' secrets
  of that layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.crypto.keys import KeyFactory, LayerKeys
from repro.proxy.protocol import ClientMaterial
from repro.sgx.enclave import Enclave

__all__ = ["TenantRecord", "TenantDirectory", "tenant_slot"]


def tenant_slot(base_slot: str, tenant: str) -> str:
    """Sealed-store slot name for a tenant's copy of a layer secret."""
    return f"{base_slot}@{tenant}"


@dataclass
class TenantRecord:
    """Everything registered for one application (tenant)."""

    name: str
    ua_keys: LayerKeys
    ia_keys: LayerKeys
    lrs_picker: Callable[[], object]

    @property
    def client_material(self) -> ClientMaterial:
        """The public keys this tenant's user-side library embeds."""
        return ClientMaterial(
            ua=self.ua_keys.public_material, ia=self.ia_keys.public_material
        )


@dataclass
class TenantDirectory:
    """Registry of tenants sharing one proxy deployment."""

    tenants: Dict[str, TenantRecord] = field(default_factory=dict)

    def register(self, record: TenantRecord) -> None:
        """Add a tenant (name must be unique)."""
        if record.name in self.tenants:
            raise ValueError(f"tenant {record.name!r} already registered")
        self.tenants[record.name] = record

    def record(self, tenant: str) -> TenantRecord:
        """Lookup; raises KeyError with a useful message."""
        try:
            return self.tenants[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def names(self) -> List[str]:
        """Registered tenant names."""
        return list(self.tenants)

    @staticmethod
    def make_tenant(
        name: str,
        factory: KeyFactory,
        lrs_picker: Callable[[], object],
    ) -> TenantRecord:
        """Generate fresh per-tenant key material."""
        return TenantRecord(
            name=name,
            ua_keys=factory.layer_keys(),
            ia_keys=factory.layer_keys(),
            lrs_picker=lrs_picker,
        )

    def provision_layer(self, layer: str, enclave: Enclave) -> None:
        """Install every tenant's secrets of *layer* into *enclave*.

        The enclave must already be attested (the normal provisioning
        flow); each tenant's application performs this step with its
        own keys in a real deployment.
        """
        from repro.sgx.provisioning import (
            IA_SECRET_K,
            IA_SECRET_SK,
            UA_SECRET_K,
            UA_SECRET_SK,
        )

        secrets = {}
        for record in self.tenants.values():
            if layer == "UA":
                secrets[tenant_slot(UA_SECRET_SK, record.name)] = record.ua_keys.private_key
                secrets[tenant_slot(UA_SECRET_K, record.name)] = record.ua_keys.symmetric_key
            elif layer == "IA":
                secrets[tenant_slot(IA_SECRET_SK, record.name)] = record.ia_keys.private_key
                secrets[tenant_slot(IA_SECRET_K, record.name)] = record.ia_keys.symmetric_key
            else:
                raise ValueError(f"unknown layer {layer!r}")
        enclave.provision(secrets)
