"""Shared-proxy multi-tenant deployment.

Builds one pair of proxy layers whose instances dispatch key material
and LRS routing on the request's ``tenant`` label.  Shuffle buffers
are shared across tenants — the whole point: aggregated traffic fills
batches faster, restoring the anonymity-set guarantees for low-traffic
applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider, SimCryptoProvider
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.proxy.layers import ItemAnonymizer, ProxyRuntime, UserAnonymizer
from repro.proxy.service import IA_CODE_IDENTITY, UA_CODE_IDENTITY, PProxService
from repro.rest.codec import resolve_codec
from repro.rest.messages import Request
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import LoadBalancer, make_policy
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.tenancy.directory import TenantDirectory, tenant_slot

__all__ = ["TenantUserAnonymizer", "TenantItemAnonymizer", "build_multi_tenant_pprox"]


@dataclass
class TenantUserAnonymizer(UserAnonymizer):
    """UA instance dispatching key material by tenant."""

    directory: Optional[TenantDirectory] = None

    def _keys_for(self, tenant: str) -> LayerKeys:
        from repro.sgx.provisioning import UA_SECRET_K, UA_SECRET_SK

        return LayerKeys(
            private_key=self.enclave.secret(tenant_slot(UA_SECRET_SK, tenant)),
            symmetric_key=self.enclave.secret(tenant_slot(UA_SECRET_K, tenant)),
        )


@dataclass
class TenantItemAnonymizer(ItemAnonymizer):
    """IA instance dispatching keys and LRS routing by tenant."""

    directory: Optional[TenantDirectory] = None

    def _keys_for(self, tenant: str) -> LayerKeys:
        from repro.sgx.provisioning import IA_SECRET_K, IA_SECRET_SK

        return LayerKeys(
            private_key=self.enclave.secret(tenant_slot(IA_SECRET_SK, tenant)),
            symmetric_key=self.enclave.secret(tenant_slot(IA_SECRET_K, tenant)),
        )

    def _pick_backend(self, request: Request):
        tenant = request.fields.get("tenant", "default")
        return self.directory.record(tenant).lrs_picker()


def build_multi_tenant_pprox(
    loop: EventLoop,
    network: Network,
    rng: RngRegistry,
    config: PProxConfig,
    directory: TenantDirectory,
    provider: Optional[CryptoProvider] = None,
    costs: ProxyCostModel = DEFAULT_COSTS,
    codec: Optional[str] = None,
) -> PProxService:
    """Deploy shared proxy layers serving every registered tenant.

    The enclaves are attested once, then each tenant's application
    provisions its own keys into them (modelled by
    :meth:`TenantDirectory.provision_layer`).  *codec* selects the
    wire format by name (``"json"`` / ``"binary"``), as for
    single-tenant stacks; batch envelopes stay off because there is no
    shared IA key to seal them under — each tenant holds its own.
    """
    if provider is None:
        provider = SimCryptoProvider(rng_bytes=rng.bytes_fn("provider"))

    attestation = AttestationService(rng_bytes=rng.bytes_fn("attestation"))
    runtime = ProxyRuntime(
        loop=loop,
        network=network,
        rng=rng.stream("proxy"),
        provider=provider,
        config=config,
        costs=costs,
        codec=resolve_codec(codec) if codec is not None else None,
    )
    ua_balancer = LoadBalancer(
        name="client->ua", policy=make_policy(config.balancing, rng.stream("lb-ua"))
    )
    ia_balancer = LoadBalancer(
        name="ua->ia", policy=make_policy(config.balancing, rng.stream("lb-ia"))
    )

    ia_instances = []
    for index in range(config.ia_instances):
        enclave = Enclave(
            name=f"mt-ia-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
            host_node=f"node-ia-{index}",
        )
        enclave.attested = True  # attested by every tenant before provisioning
        directory.provision_layer("IA", enclave)
        instance = TenantItemAnonymizer(
            name=f"pprox-ia-{index}",
            runtime=runtime,
            enclave=enclave,
            lrs_picker=lambda: None,  # routing is per-tenant
            directory=directory,
        )
        ia_instances.append(instance)
        ia_balancer.add(instance)

    ua_instances = []
    for index in range(config.ua_instances):
        enclave = Enclave(
            name=f"mt-ua-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            host_node=f"node-ua-{index}",
        )
        enclave.attested = True
        directory.provision_layer("UA", enclave)
        instance = TenantUserAnonymizer(
            name=f"pprox-ua-{index}",
            runtime=runtime,
            enclave=enclave,
            ia_balancer=ia_balancer,
            directory=directory,
        )
        ua_instances.append(instance)
        ua_balancer.add(instance)

    # Reuse PProxService for entry-point selection and enclave listing;
    # the provisioner field is unused in multi-tenant mode (each tenant
    # holds its own keys in the directory).
    service = PProxService(
        runtime=runtime,
        provisioner=None,  # type: ignore[arg-type]
        attestation=attestation,
        ua_instances=ua_instances,
        ia_instances=ia_instances,
        ua_balancer=ua_balancer,
        ia_balancer=ia_balancer,
        lrs_picker=lambda: None,
    )
    return service
