"""Multi-tenant RaaS deployments (§6.3 traffic-aggregation mitigation)."""

from repro.tenancy.directory import TenantDirectory, TenantRecord, tenant_slot
from repro.tenancy.service import (
    TenantItemAnonymizer,
    TenantUserAnonymizer,
    build_multi_tenant_pprox,
)

__all__ = [
    "TenantDirectory",
    "TenantRecord",
    "tenant_slot",
    "TenantUserAnonymizer",
    "TenantItemAnonymizer",
    "build_multi_tenant_pprox",
]
