"""The Harness-like recommendation engine behind the REST API.

Mirrors the module structure of §7: a MongoDB-like
:class:`repro.lrs.store.EventStore` persists pending feedback, a
Spark-like batch :meth:`HarnessEngine.train` job rebuilds the model
from accumulated inputs, and the (Elasticsearch-like) trained model
serves ``get`` queries.  The engine is algorithm-agnostic: any
:class:`repro.lrs.baselines.Recommender`-shaped object plugs in; the
default is the Universal Recommender's CCO.

This is the *functional* engine; the performance model of a scaled
Harness deployment lives in :mod:`repro.lrs.service`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lrs.cco import CcoModel, CcoTrainer
from repro.lrs.store import EventStore

__all__ = ["HarnessEngine"]


@dataclass
class HarnessEngine:
    """Functional recommendation engine with the LRS REST semantics."""

    store: EventStore = field(default_factory=EventStore)
    trainer: CcoTrainer = field(default_factory=CcoTrainer)
    model: Optional[CcoModel] = None
    history_limit: int = 50
    default_n: int = 20
    trainings: int = 0

    def post_event(self, user: str, item: str, payload: Optional[str] = None) -> None:
        """Handle ``post(u, i[, p])``: persist the feedback event."""
        self.store.insert(user, item, payload)

    def train(self) -> CcoModel:
        """Run the batch model-building job (the Spark run of §7)."""
        self.model = self.trainer.train(self.store.interactions())
        self.trainings += 1
        return self.model

    def get_recommendations(self, user: str, n: Optional[int] = None) -> List[str]:
        """Handle ``get(u)``: top-n items for *user*.

        Before the first training run the engine has no model and
        returns an empty list (Harness behaves the same before the
        first Spark job completes).
        """
        if self.model is None:
            return []
        history = self.store.user_history(user, limit=self.history_limit)
        return self.model.recommend(history, n=n if n is not None else self.default_n)

    @property
    def event_count(self) -> int:
        """Number of feedback events persisted so far."""
        return len(self.store)
