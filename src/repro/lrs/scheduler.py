"""Periodic model training (the paper's recurring Spark job).

Harness rebuilds the Universal Recommender model with "periodic runs
of Apache Spark ... including new inputs fetched from MongoDB" (§7).
:class:`TrainingScheduler` models that: on a fixed interval it runs a
training job on the support node (the Spark host), charging a
duration proportional to the number of accumulated events, and swaps
the fresh model in on completion.  Queries keep being served from the
previous model while training runs — exactly Harness's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.lrs.service import HarnessService
from repro.simnet.clock import EventLoop

__all__ = ["TrainingScheduler"]


@dataclass
class TrainingScheduler:
    """Retrains the engine every *interval* simulated seconds."""

    loop: EventLoop
    harness: HarnessService
    interval: float = 60.0
    #: Spark job duration: fixed startup plus per-event cost.
    base_seconds: float = 2.0
    per_event_seconds: float = 0.0002
    completions: List[float] = field(default_factory=list)
    _running: bool = False
    training_in_progress: bool = False

    def start(self) -> None:
        """Schedule the first run."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.interval, self._kick)

    def stop(self) -> None:
        """Stop scheduling further runs."""
        self._running = False

    def job_duration(self) -> float:
        """Duration of a training job over the current event count."""
        return self.base_seconds + self.per_event_seconds * self.harness.engine.event_count

    def _kick(self) -> None:
        if not self._running:
            return
        if not self.training_in_progress:
            self.training_in_progress = True
            # The Spark job occupies the support pool for its duration;
            # the previous model keeps serving queries meanwhile.
            self.harness.support.submit(self.job_duration(), self._finish)
        self.loop.schedule(self.interval, self._kick)

    def _finish(self) -> None:
        self.harness.train()
        self.training_in_progress = False
        self.completions.append(self.loop.now)
