"""Legacy Recommendation System substrate.

A from-scratch Universal-Recommender-style engine (CCO with LLR
similarity), the baselines it is compared against, the document store
and batch trainer behind it, the nginx stub used by micro-benchmarks,
and the scalable Harness-like service model used by macro-benchmarks.
"""

from repro.lrs.baselines import ItemKnnRecommender, PopularityRecommender, Recommender
from repro.lrs.cco import CcoModel, CcoTrainer, llr_score
from repro.lrs.engine import HarnessEngine
from repro.lrs.evaluation import EvaluationResult, evaluate_recommender, leave_latest_out_split
from repro.lrs.scheduler import TrainingScheduler
from repro.lrs.service import HarnessCostModel, HarnessFrontend, HarnessService
from repro.lrs.store import EventStore, FeedbackEvent
from repro.lrs.stub import STATIC_ITEMS, StubLrs

__all__ = [
    "Recommender",
    "PopularityRecommender",
    "ItemKnnRecommender",
    "CcoModel",
    "CcoTrainer",
    "llr_score",
    "HarnessEngine",
    "EvaluationResult",
    "evaluate_recommender",
    "leave_latest_out_split",
    "TrainingScheduler",
    "HarnessService",
    "HarnessFrontend",
    "HarnessCostModel",
    "EventStore",
    "FeedbackEvent",
    "StubLrs",
    "STATIC_ITEMS",
]
