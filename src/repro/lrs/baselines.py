"""Baseline recommenders the evaluation compares CCO against.

The paper's claim that PProx is algorithm-agnostic ("compatible with
arbitrary recommendation algorithms") is exercised by swapping these
into the Harness engine: every recommender sees only (pseudonymous)
user/item identifiers through the same interface.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol, Sequence, Tuple

__all__ = ["Recommender", "PopularityRecommender", "ItemKnnRecommender"]


class Recommender(Protocol):
    """Interface every pluggable recommendation algorithm implements."""

    def fit(self, interactions: Iterable[Tuple[str, str]]) -> None:
        """Train on (user, item) interactions."""
        ...

    def recommend(self, history: Sequence[str], n: int = 20) -> List[str]:
        """Top-*n* recommendations for a user with *history*."""
        ...


@dataclass
class PopularityRecommender:
    """Most-popular-items baseline (non-personalized)."""

    counts: Counter = field(default_factory=Counter)

    def fit(self, interactions: Iterable[Tuple[str, str]]) -> None:
        self.counts = Counter(item for _, item in interactions)

    def recommend(self, history: Sequence[str], n: int = 20) -> List[str]:
        history_set = set(history)
        ranked = sorted(self.counts, key=lambda i: (-self.counts[i], i))
        return [item for item in ranked if item not in history_set][:n]


@dataclass
class ItemKnnRecommender:
    """Item-based collaborative filtering with cosine similarity.

    The classic alternative to CCO: similarity between items is the
    cosine of their user-incidence vectors; a user's score for a
    candidate is the summed similarity with their history items.
    """

    neighbourhood: int = 50
    #: item -> list of (neighbour, similarity), sorted by similarity.
    neighbours: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)
    popularity: Counter = field(default_factory=Counter)

    def fit(self, interactions: Iterable[Tuple[str, str]]) -> None:
        user_items: Dict[str, set] = defaultdict(set)
        for user, item in interactions:
            user_items[user].add(item)

        item_degree: Counter = Counter()
        pair_counts: Counter = Counter()
        for items in user_items.values():
            ordered = sorted(items)
            for item in ordered:
                item_degree[item] += 1
            for index, first in enumerate(ordered):
                for second in ordered[index + 1:]:
                    pair_counts[(first, second)] += 1

        neighbours: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
        for (first, second), both in pair_counts.items():
            similarity = both / math.sqrt(item_degree[first] * item_degree[second])
            neighbours[first].append((second, similarity))
            neighbours[second].append((first, similarity))
        self.neighbours = {}
        for item, sims in neighbours.items():
            sims.sort(key=lambda pair: (-pair[1], pair[0]))
            self.neighbours[item] = sims[: self.neighbourhood]
        self.popularity = item_degree

    def recommend(self, history: Sequence[str], n: int = 20) -> List[str]:
        history_set = set(history)
        scores: Dict[str, float] = defaultdict(float)
        for item in history_set:
            for neighbour, similarity in self.neighbours.get(item, ()):
                if neighbour not in history_set:
                    scores[neighbour] += similarity
        if not scores:
            ranked = sorted(
                (i for i in self.popularity if i not in history_set),
                key=lambda i: (-self.popularity[i], i),
            )
            return ranked[:n]
        return sorted(scores, key=lambda i: (-scores[i], i))[:n]
