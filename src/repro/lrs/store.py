"""Document store backing the recommendation engine.

Harness persists "engine-related data and inputs pending processing
(i.e., feedback received via post requests)" in MongoDB (paper §7).
This module provides the small slice of that behaviour the engine
needs: append-only event collections with field-indexed lookup.

Crucially for the privacy analysis, the store is *readable by the
adversary* ("can access any data manipulated by the LRS", §2.3) — the
:meth:`EventStore.dump` method is exactly the adversary's view.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FeedbackEvent", "EventStore"]


@dataclass(frozen=True)
class FeedbackEvent:
    """One stored feedback record (post request as persisted).

    With PProx in front, ``user`` and ``item`` hold *pseudonymous*
    identifiers; without it, cleartext ones.
    """

    user: str
    item: str
    payload: Optional[str] = None
    sequence: int = 0


@dataclass
class EventStore:
    """Append-only feedback store with per-user and per-item indexes."""

    events: List[FeedbackEvent] = field(default_factory=list)
    _by_user: Dict[str, List[int]] = field(default_factory=lambda: defaultdict(list))
    _by_item: Dict[str, List[int]] = field(default_factory=lambda: defaultdict(list))

    def insert(self, user: str, item: str, payload: Optional[str] = None) -> FeedbackEvent:
        """Persist one feedback event."""
        event = FeedbackEvent(user=user, item=item, payload=payload, sequence=len(self.events))
        self.events.append(event)
        self._by_user[user].append(event.sequence)
        self._by_item[item].append(event.sequence)
        return event

    def rewrite(
        self, sequence: int, *, user: Optional[str] = None, item: Optional[str] = None
    ) -> FeedbackEvent:
        """Replace identifier columns of one stored event, in place.

        Used by the online re-key pass: the record keeps its sequence
        and payload, only the pseudonymous identifiers change, and the
        per-user/per-item indexes stay consistent so lookups served
        between re-key batches remain correct.
        """
        event = self.events[sequence]
        new_user = user if user is not None else event.user
        new_item = item if item is not None else event.item
        if new_user == event.user and new_item == event.item:
            return event
        updated = FeedbackEvent(
            user=new_user, item=new_item, payload=event.payload, sequence=sequence
        )
        self.events[sequence] = updated
        if new_user != event.user:
            self._move_index(self._by_user, event.user, new_user, sequence)
        if new_item != event.item:
            self._move_index(self._by_item, event.item, new_item, sequence)
        return updated

    def _move_index(
        self, index: Dict[str, List[int]], old_key: str, new_key: str, sequence: int
    ) -> None:
        entries = index.get(old_key)
        if entries is not None:
            try:
                entries.remove(sequence)
            except ValueError:
                pass
            if not entries:
                del index[old_key]
        # Insertion keeps each index list sorted by sequence (inserts
        # only ever append increasing sequences, so insort preserves
        # the "most recent last" contract of user_history).
        insort(index[new_key], sequence)

    def user_history(self, user: str, limit: Optional[int] = None) -> List[str]:
        """Items the user interacted with, most recent last."""
        indices = self._by_user.get(user, [])
        if limit is not None:
            indices = indices[-limit:]
        return [self.events[i].item for i in indices]

    def item_audience(self, item: str) -> List[str]:
        """Users who interacted with *item* (with repetition)."""
        return [self.events[i].user for i in self._by_item.get(item, [])]

    def users(self) -> List[str]:
        """All distinct user identifiers, in first-seen order."""
        return list(self._by_user.keys())

    def items(self) -> List[str]:
        """All distinct item identifiers, in first-seen order."""
        return list(self._by_item.keys())

    def interactions(self) -> Iterator[Tuple[str, str]]:
        """Iterate (user, item) pairs in insertion order."""
        for event in self.events:
            yield event.user, event.item

    def dump(self) -> List[FeedbackEvent]:
        """The adversary's view of the database contents."""
        return list(self.events)

    def clear(self) -> None:
        """Drop everything (breach response option 1 of footnote 1)."""
        self.events.clear()
        self._by_user.clear()
        self._by_item.clear()

    def __len__(self) -> int:
        return len(self.events)
