"""Simulated Harness deployment: scalable frontends + support nodes.

The macro-benchmarks deploy Harness with 3 to 12 frontend nodes plus 4
support nodes (3 Elasticsearch, 1 MongoDB + Spark); "the front-end
service is the main source of load for serving requests and these 4
support nodes are necessary and sufficient in all configurations"
(§8.2).  Each frontend is a 2-core NUC.

The functional side (what recommendations come back) is computed by
the shared :class:`repro.lrs.engine.HarnessEngine`; the performance
side charges calibrated service times on the frontend that handles
the request plus a small support-store lookup, reproducing the
saturation ladder of Figure 9: ~250 RPS of headroom per 3 frontends.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.lrs.engine import HarnessEngine
from repro.rest.messages import Request, Response, Verb
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import LoadBalancer, RandomPolicy
from repro.simnet.node import SimNode

__all__ = ["HarnessFrontend", "HarnessService", "HarnessCostModel"]


@dataclass(frozen=True)
class HarnessCostModel:
    """Calibrated service-time parameters for the Harness deployment.

    ``get`` requests perform "non-trivial reads to a shared database
    and complex (pre-built) user models" (§8.2); posts are lighter
    (append to MongoDB).  Medians are per-request core time on a
    2-core frontend; with three frontends (6 cores) the deployment
    sustains ~250 RPS before the queueing knee, matching Figure 9.
    """

    get_median_seconds: float = 0.016
    get_sigma: float = 0.45
    post_median_seconds: float = 0.006
    post_sigma: float = 0.35
    #: ES / MongoDB lookup charged on the support pool per request.
    support_seconds: float = 0.002

    def sample_frontend(self, verb: str, rng: random.Random) -> float:
        """Draw a frontend service time for a request of kind *verb*."""
        if verb == Verb.GET:
            return rng.lognormvariate(math.log(self.get_median_seconds), self.get_sigma)
        return rng.lognormvariate(math.log(self.post_median_seconds), self.post_sigma)


@dataclass
class HarnessFrontend:
    """One Harness frontend instance on its own 2-core node."""

    name: str
    loop: EventLoop
    rng: random.Random
    engine: HarnessEngine
    costs: HarnessCostModel
    support: SimNode
    node: SimNode = None  # type: ignore[assignment]
    requests_served: int = 0

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.name, loop=self.loop, cores=2)

    @property
    def address(self) -> str:
        """Network address of this frontend."""
        return self.name

    @property
    def pending(self) -> int:
        """Outstanding requests (load-balancer signal)."""
        return self.node.pending

    def handle(self, request: Request, reply: Callable[[Response], None]) -> None:
        """Process *request*: frontend work, support lookup, reply."""
        self.requests_served += 1
        frontend_time = self.costs.sample_frontend(request.verb, self.rng)

        def after_frontend() -> None:
            self.support.submit(self.costs.support_seconds, lambda: finish())

        def finish() -> None:
            reply(self._execute(request))

        self.node.submit(frontend_time, after_frontend)

    def _execute(self, request: Request) -> Response:
        """The functional part: run the engine on the request fields."""
        if request.verb == Verb.POST:
            user = request.fields.get("user")
            item = request.fields.get("item")
            if not isinstance(user, str) or not isinstance(item, str):
                return Response(status=400, fields={"error": "missing user/item"},
                                request_id=request.request_id)
            self.engine.post_event(user, item, request.fields.get("payload"))
            return Response(status=200, fields={}, request_id=request.request_id)
        user = request.fields.get("user")
        if not isinstance(user, str):
            return Response(status=400, fields={"error": "missing user"},
                            request_id=request.request_id)
        items = self.engine.get_recommendations(user)
        return Response(status=200, fields={"items": items}, request_id=request.request_id)


@dataclass
class HarnessService:
    """A Harness deployment: N frontends behind a balancer + support pool."""

    loop: EventLoop
    rng: random.Random
    frontend_count: int = 3
    engine: HarnessEngine = field(default_factory=HarnessEngine)
    costs: HarnessCostModel = field(default_factory=HarnessCostModel)
    name: str = "harness"
    frontends: List[HarnessFrontend] = field(default_factory=list)
    support: SimNode = None  # type: ignore[assignment]
    balancer: LoadBalancer = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.support is None:
            # 4 support nodes x 2 cores, pooled: 3 Elasticsearch + 1
            # MongoDB/Spark.  Pooling is fine because support work is
            # far from saturation in every paper configuration.
            self.support = SimNode(name=f"{self.name}-support", loop=self.loop, cores=8)
        if self.balancer is None:
            self.balancer = LoadBalancer(name=f"{self.name}-lb", policy=RandomPolicy(rng=self.rng))
        while len(self.frontends) < self.frontend_count:
            self.add_frontend()

    def add_frontend(self) -> HarnessFrontend:
        """Scale out by one frontend node."""
        frontend = HarnessFrontend(
            name=f"{self.name}-fe-{len(self.frontends)}",
            loop=self.loop,
            rng=self.rng,
            engine=self.engine,
            costs=self.costs,
            support=self.support,
        )
        self.frontends.append(frontend)
        self.balancer.add(frontend)
        return frontend

    def pick_frontend(self) -> HarnessFrontend:
        """Choose the frontend for the next request (kube-proxy style)."""
        return self.balancer.pick()

    def train(self) -> None:
        """Run the Spark-like batch training job on accumulated events."""
        self.engine.train()

    @property
    def node_count(self) -> int:
        """Total nodes in the deployment (frontends + 4 support)."""
        return len(self.frontends) + 4
