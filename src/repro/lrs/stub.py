"""The nginx stub LRS used by the micro-benchmarks (paper §7.1).

"When testing PProx in isolation from Harness, we use a stub service
with the nginx high-performance HTTP server to serve a static payload
of the same size as Harness recommendations lists."  The stub replies
to every ``get`` with the same 20 static item identifiers, and to
every ``post`` with an empty 200.  "Direct requests from the
injector(s) to the stub have a median latency of 1 to 2 ms and scale
well over 1,000 RPS" — the service-time model reflects that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List

from repro.rest.messages import Request, Response, Verb
from repro.simnet.clock import EventLoop
from repro.simnet.node import SimNode

__all__ = ["StubLrs", "STATIC_ITEMS", "make_pseudonymous_payload"]

#: The stub's constant payload (same cardinality as a padded Harness
#: recommendation list).
STATIC_ITEMS: List[str] = [f"static-item-{index:02d}" for index in range(20)]


@dataclass
class StubLrs:
    """nginx-like static server on a single (never saturated) node."""

    loop: EventLoop
    rng: random.Random
    #: nginx on a dedicated NUC easily exceeds 1k RPS; model it as an
    #: 8-way worker pool with sub-millisecond service times.
    node: SimNode = None  # type: ignore[assignment]
    address: str = "lrs-stub"
    median_service_seconds: float = 0.0006
    requests_served: int = 0
    #: The static payload.  When the proxy in front pseudonymizes
    #: items, this must hold pseudonymous identifiers (as a payload
    #: captured from a live Harness response would); see
    #: :func:`make_pseudonymous_payload`.
    items: List[str] = field(default_factory=lambda: list(STATIC_ITEMS))

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.address, loop=self.loop, cores=8)

    @property
    def pending(self) -> int:
        """Outstanding requests (load-balancer signal)."""
        return self.node.pending

    def handle(self, request: Request, reply: Callable[[Response], None]) -> None:
        """Serve *request* after a sampled sub-millisecond service time."""
        service_time = self.rng.lognormvariate(
            _log_median(self.median_service_seconds), 0.35
        )
        self.requests_served += 1

        def finish() -> None:
            if request.verb == Verb.GET:
                reply(Response(status=200, fields={"items": list(self.items)},
                               request_id=request.request_id))
            else:
                reply(Response(status=200, fields={}, request_id=request.request_id))

        self.node.submit(service_time, finish)

    def train(self) -> None:
        """No-op: the stub has no model."""


def make_pseudonymous_payload(provider, symmetric_key: bytes) -> List[str]:
    """Pseudonymize :data:`STATIC_ITEMS` under the IA layer's key.

    The paper's stub serves "a static payload of the same size as
    Harness recommendations lists"; with item pseudonymization active
    that payload consists of pseudonymous identifiers, which is what
    the IA layer expects to de-pseudonymize on the response path.
    """
    from repro.crypto.envelope import EnvelopeCodec, encode_identifier

    return [
        EnvelopeCodec.wire_text(
            provider.pseudonymize(symmetric_key, encode_identifier(item))
        )
        for item in STATIC_ITEMS
    ]


def _log_median(median: float) -> float:
    """The mu parameter of a lognormal with the given median."""
    import math

    return math.log(median)
