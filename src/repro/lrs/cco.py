"""Correlated Cross-Occurrence (CCO) collaborative filtering.

The paper integrates PProx with the Universal Recommender, which
"implements collaborative filtering based on the Correlated
Cross-Occurrence (CCO) algorithm.  CCO aggregates indicators
(feedback on the access to items) and builds profiles allowing to
predict users' interests based on the history of other profiles with
high similarity" (§7).

CCO as shipped in the Universal Recommender / Mahout:

1. Build the user x item interaction matrix from the event stream
   (deduplicated, with per-user downsampling of very long histories).
2. For every item pair, test whether their co-occurrence across user
   histories is *anomalously* frequent using Dunning's log-likelihood
   ratio (LLR) over the 2x2 contingency table.
3. Keep, per item, the top-k correlated items whose LLR clears a
   threshold — these are the item's *indicators*.
4. At query time, score candidate items by the sum of LLR weights of
   indicators that appear in the querying user's history; return the
   top-n candidates not already in the history (the search-engine
   "OR-query" that Elasticsearch performs for the UR).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CcoModel", "CcoTrainer", "llr_score"]


def _entropy(*counts: int) -> float:
    """Unnormalized Shannon entropy term used by the LLR statistic."""
    total = sum(counts)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count:
            result += count * math.log(count / total)
    return -result


def llr_score(k11: int, k12: int, k21: int, k22: int) -> float:
    """Dunning log-likelihood ratio of a 2x2 contingency table.

    ``k11`` users saw both items, ``k12`` only the row item, ``k21``
    only the column item, ``k22`` neither.  Larger means the
    co-occurrence is more anomalous (more informative).
    """
    row_entropy = _entropy(k11 + k12, k21 + k22)
    column_entropy = _entropy(k11 + k21, k12 + k22)
    matrix_entropy = _entropy(k11, k12, k21, k22)
    score = 2.0 * (row_entropy + column_entropy - matrix_entropy)
    # Guard against tiny negative values from floating-point error.
    return max(score, 0.0)


@dataclass
class CcoModel:
    """A trained CCO model: per-item weighted indicator lists."""

    #: item -> list of (indicator_item, llr_weight), sorted by weight.
    indicators: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)
    #: item -> global interaction count (popularity fallback ranking).
    popularity: Dict[str, int] = field(default_factory=dict)
    trained_on_events: int = 0
    #: indicator -> list of (item, weight); built lazily for queries.
    _reverse: Optional[Dict[str, List[Tuple[str, float]]]] = field(
        default=None, repr=False, compare=False
    )

    def _reverse_index(self) -> Dict[str, List[Tuple[str, float]]]:
        """Posting lists keyed by indicator (the "search index" view)."""
        if self._reverse is None:
            reverse: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
            for item, weighted in self.indicators.items():
                for indicator, weight in weighted:
                    reverse[indicator].append((item, weight))
            self._reverse = dict(reverse)
        return self._reverse

    def recommend(
        self,
        history: Sequence[str],
        n: int = 20,
        exclude_history: bool = True,
    ) -> List[str]:
        """Top-*n* items for a user with interaction *history*.

        Scoring mirrors the UR's Elasticsearch query: each history item
        contributes the LLR weight of candidates for which it is an
        indicator.  Ties break by popularity, then lexicographically
        (for determinism).  Cold-start users fall back to popularity.
        """
        history_set = set(history)
        reverse = self._reverse_index()
        scores: Dict[str, float] = defaultdict(float)
        for indicator in history_set:
            for item, weight in reverse.get(indicator, ()):
                if exclude_history and item in history_set:
                    continue
                scores[item] += weight
        if not scores:
            ranked = sorted(
                (i for i in self.popularity if not (exclude_history and i in history_set)),
                key=lambda i: (-self.popularity[i], i),
            )
            return ranked[:n]
        ranked = sorted(
            scores,
            key=lambda i: (-scores[i], -self.popularity.get(i, 0), i),
        )
        return ranked[:n]

    def indicator_count(self) -> int:
        """Total number of (item, indicator) edges in the model."""
        return sum(len(v) for v in self.indicators.values())


@dataclass
class CcoTrainer:
    """Batch trainer: events -> :class:`CcoModel`.

    Parameters follow the Universal Recommender's defaults in spirit:
    *max_history* caps per-user interaction lists before pair counting
    (Mahout's ``maxPrefsPerUser`` downsampling), *max_indicators* caps
    the per-item indicator list (``maxCorrelatorsPerItem``), and
    *llr_threshold* drops non-anomalous co-occurrences.
    """

    max_history: int = 50
    max_indicators: int = 50
    llr_threshold: float = 1.0

    def train(self, interactions: Iterable[Tuple[str, str]]) -> CcoModel:
        """Train on an iterable of (user, item) interactions."""
        histories: Dict[str, List[str]] = defaultdict(list)
        seen: set = set()
        event_count = 0
        for user, item in interactions:
            event_count += 1
            if (user, item) in seen:
                continue
            seen.add((user, item))
            history = histories[user]
            if len(history) < self.max_history:
                history.append(item)

        item_counts: Counter = Counter()
        pair_counts: Counter = Counter()
        for history in histories.values():
            for item in history:
                item_counts[item] += 1
            unique = sorted(set(history))
            for index, first in enumerate(unique):
                for second in unique[index + 1:]:
                    pair_counts[(first, second)] += 1

        total_users = len(histories)
        indicators: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
        for (first, second), both in pair_counts.items():
            k11 = both
            k12 = item_counts[first] - both
            k21 = item_counts[second] - both
            k22 = total_users - k11 - k12 - k21
            score = llr_score(k11, k12, k21, max(k22, 0))
            if score < self.llr_threshold:
                continue
            indicators[first].append((second, score))
            indicators[second].append((first, score))

        trimmed: Dict[str, List[Tuple[str, float]]] = {}
        for item, weighted in indicators.items():
            weighted.sort(key=lambda pair: (-pair[1], pair[0]))
            trimmed[item] = weighted[: self.max_indicators]

        return CcoModel(
            indicators=trimmed,
            popularity=dict(item_counts),
            trained_on_events=event_count,
        )
