"""Offline recommendation-quality evaluation.

The paper keeps quality orthogonal ("recommendations are strictly the
same as when using UR in Harness directly") — which is precisely a
claim about *invariance*: PProx applies a bijective renaming of user
and item identifiers, and every recommender behind the engine
interface is invariant under such a renaming.  This module provides
the standard offline metrics (precision@k, recall@k, NDCG@k, catalog
coverage) over a leave-latest-out split, so that:

* the invariance claim can be tested quantitatively (identical metric
  values with and without pseudonymization);
* the CCO engine can be compared against the popularity and item-kNN
  baselines on the MovieLens-shaped workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["EvaluationResult", "leave_latest_out_split", "evaluate_recommender"]


@dataclass(frozen=True)
class EvaluationResult:
    """Averaged offline metrics over the evaluated users."""

    users_evaluated: int
    precision_at_k: float
    recall_at_k: float
    ndcg_at_k: float
    coverage: float
    k: int

    def row(self) -> str:
        """Fixed-width report row."""
        return (
            f"P@{self.k}={self.precision_at_k:.4f}"
            f"  R@{self.k}={self.recall_at_k:.4f}"
            f"  NDCG@{self.k}={self.ndcg_at_k:.4f}"
            f"  coverage={self.coverage:.3f}"
            f"  users={self.users_evaluated}"
        )


def leave_latest_out_split(
    events: Iterable[Tuple[str, str]], holdout: int = 1, min_history: int = 3
) -> Tuple[List[Tuple[str, str]], Dict[str, List[str]]]:
    """Split interactions into train events and per-user held-out items.

    The last *holdout* interactions of every user with at least
    *min_history* + *holdout* interactions are withheld; everything
    else trains the model.  Deterministic given the event order.
    """
    histories: Dict[str, List[str]] = {}
    for user, item in events:
        histories.setdefault(user, []).append(item)

    train: List[Tuple[str, str]] = []
    test: Dict[str, List[str]] = {}
    for user, items in histories.items():
        if len(items) >= min_history + holdout:
            kept, held = items[:-holdout], items[-holdout:]
            test[user] = held
        else:
            kept = items
        train.extend((user, item) for item in kept)
    return train, test


def _dcg(relevances: Sequence[int]) -> float:
    return sum(rel / math.log2(rank + 2) for rank, rel in enumerate(relevances))


def evaluate_recommender(
    recommend,
    train_events: Sequence[Tuple[str, str]],
    test: Dict[str, List[str]],
    k: int = 10,
) -> EvaluationResult:
    """Score a trained recommender against held-out interactions.

    *recommend* maps a user's training history to a ranked item list
    (``recommend(history, n)``), matching both
    :meth:`repro.lrs.cco.CcoModel.recommend` and the baseline
    recommenders' ``recommend`` bound with their fitted state.
    """
    histories: Dict[str, List[str]] = {}
    for user, item in train_events:
        histories.setdefault(user, []).append(item)

    precision_sum = 0.0
    recall_sum = 0.0
    ndcg_sum = 0.0
    recommended_items: set = set()
    evaluated = 0
    for user, held in test.items():
        history = histories.get(user, [])
        if not history:
            continue
        ranked = list(recommend(history, k))[:k]
        if not ranked:
            continue
        evaluated += 1
        recommended_items.update(ranked)
        held_set = set(held)
        hits = [1 if item in held_set else 0 for item in ranked]
        hit_count = sum(hits)
        precision_sum += hit_count / k
        recall_sum += hit_count / len(held_set)
        ideal = _dcg([1] * min(len(held_set), k))
        ndcg_sum += _dcg(hits) / ideal if ideal else 0.0

    catalog = {item for _, item in train_events}
    return EvaluationResult(
        users_evaluated=evaluated,
        precision_at_k=precision_sum / evaluated if evaluated else 0.0,
        recall_at_k=recall_sum / evaluated if evaluated else 0.0,
        ndcg_at_k=ndcg_sum / evaluated if evaluated else 0.0,
        coverage=len(recommended_items) / len(catalog) if catalog else 0.0,
        k=k,
    )
