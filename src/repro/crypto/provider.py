"""Crypto provider interface used by the user-side library and proxies.

Two interchangeable implementations:

* :class:`RealCryptoProvider` — the paper's construction: RSA-OAEP for
  layer-addressed fields, AES-256-CTR with a constant IV for
  deterministic pseudonymization, AES-256-CTR with a random IV for the
  temporary-key protection of recommendation lists.
* :class:`FastCryptoProvider` — functionally equivalent but built on
  SHA-256 primitives (Feistel permutation for deterministic
  pseudonyms, hash-keystream XOR for randomized symmetric encryption).
  RSA is kept for the asymmetric half.  Used for very large
  simulations where pure-Python AES would dominate run time.

Both are *real* transformations — ciphertexts are actually unreadable
without the key — so the privacy test-suite exercises genuine data
flow, not tags.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto import ctr
from repro.crypto.keys import SYMMETRIC_KEY_BYTES, LayerKeys, LayerPublicMaterial
from repro.crypto.rsa import RsaPublicKey

__all__ = [
    "CryptoProvider",
    "RealCryptoProvider",
    "FastCryptoProvider",
    "SimCryptoProvider",
]


class CryptoProvider:
    """Abstract interface for the protocol's cryptographic operations."""

    #: Human-readable name used in experiment configuration records.
    name = "abstract"

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        """Randomized public-key encryption addressed to one layer."""
        raise NotImplementedError

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        """Invert :meth:`asym_encrypt` with the layer's private key."""
        raise NotImplementedError

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        """Deterministic encryption of a fixed-size identifier."""
        raise NotImplementedError

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        """Invert :meth:`pseudonymize`."""
        raise NotImplementedError

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        """Randomized symmetric encryption (temporary-key payloads)."""
        raise NotImplementedError

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        """Invert :meth:`sym_encrypt`."""
        raise NotImplementedError

    def new_temporary_key(self) -> bytes:
        """Fresh per-request temporary key ``k_u``."""
        return os.urandom(SYMMETRIC_KEY_BYTES)


@dataclass
class RealCryptoProvider(CryptoProvider):
    """The paper's construction: RSA-OAEP + AES-256-CTR."""

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    name = "real"

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        key: RsaPublicKey = public.public_key
        if len(plaintext) <= key.max_message_bytes:
            # Direct OAEP; mark with a 0x00 prefix.
            return b"\x00" + key.encrypt(plaintext, self.rng_bytes)
        # Hybrid envelope for payloads larger than OAEP capacity:
        # RSA-OAEP(session key) || AES-CTR(payload).
        session_key = self.rng_bytes(SYMMETRIC_KEY_BYTES)
        header = key.encrypt(session_key, self.rng_bytes)
        body = ctr.rand_encrypt(session_key, plaintext, self.rng_bytes)
        return b"\x01" + header + body

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        if not blob:
            raise ValueError("empty asymmetric ciphertext")
        kind, rest = blob[0], blob[1:]
        if kind == 0:
            return keys.private_key.decrypt(rest)
        if kind == 1:
            modulus_bytes = keys.private_key.modulus_bytes
            session_key = keys.private_key.decrypt(rest[:modulus_bytes])
            return ctr.rand_decrypt(session_key, rest[modulus_bytes:])
        raise ValueError(f"unknown asymmetric envelope kind {kind}")

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        return ctr.det_encrypt(key, identifier)

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        return ctr.det_decrypt(key, pseudonym)

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        return ctr.rand_encrypt(key, plaintext, self.rng_bytes)

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        return ctr.rand_decrypt(key, blob)

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


def _hash_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """SHA-256-based keystream: H(key || iv || counter) blocks."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + iv + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:length])


def _feistel_round_key(key: bytes, round_index: int) -> bytes:
    return hmac.new(key, b"feistel-round-%d" % round_index, "sha256").digest()


def _feistel(key: bytes, block: bytes, rounds: range) -> bytes:
    """Balanced Feistel permutation over an even-length block.

    Deterministic and invertible (run *rounds* reversed to invert), so
    it plays the role AES-CTR-with-constant-IV plays in the paper: a
    keyed pseudonym that the owning layer can also reverse.
    """
    if len(block) % 2:
        raise ValueError("Feistel block length must be even")
    half = len(block) // 2
    left, right = block[:half], block[half:]
    for round_index in rounds:
        round_key = _feistel_round_key(key, round_index)
        digest = hmac.new(round_key, right, "sha256").digest()
        while len(digest) < half:
            digest += hmac.new(round_key, digest, "sha256").digest()
        new_left = right
        new_right = bytes(a ^ b for a, b in zip(left, digest[:half]))
        left, right = new_left, new_right
    return left + right


_FEISTEL_ROUNDS = 4


@dataclass
class FastCryptoProvider(CryptoProvider):
    """Hash-based provider: same interface, ~10x cheaper symmetric ops."""

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    name = "fast"

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        key: RsaPublicKey = public.public_key
        session_key = self.rng_bytes(SYMMETRIC_KEY_BYTES)
        header = key.encrypt(session_key, self.rng_bytes)
        iv = self.rng_bytes(16)
        body = iv + bytes(
            a ^ b for a, b in zip(plaintext, _hash_keystream(session_key, iv, len(plaintext)))
        )
        return header + body

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        modulus_bytes = keys.private_key.modulus_bytes
        if len(blob) < modulus_bytes + 16:
            raise ValueError("asymmetric ciphertext too short")
        session_key = keys.private_key.decrypt(blob[:modulus_bytes])
        iv = blob[modulus_bytes:modulus_bytes + 16]
        body = blob[modulus_bytes + 16:]
        return bytes(a ^ b for a, b in zip(body, _hash_keystream(session_key, iv, len(body))))

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        # Pad odd-length input with an explicit marker byte pair.
        padded = identifier + (b"\x01" if len(identifier) % 2 else b"\x00\x00")
        return _feistel(key, padded, range(_FEISTEL_ROUNDS))

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        # Inverting a Feistel network: swap halves, run rounds reversed,
        # swap back.  Equivalently run with reversed round order on the
        # swapped block.
        half = len(pseudonym) // 2
        swapped = pseudonym[half:] + pseudonym[:half]
        out = _feistel(key, swapped, range(_FEISTEL_ROUNDS - 1, -1, -1))
        out = out[half:] + out[:half]
        if out.endswith(b"\x00\x00"):
            return out[:-2]
        if out.endswith(b"\x01"):
            return out[:-1]
        raise ValueError("corrupt pseudonym padding")

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        iv = self.rng_bytes(16)
        return iv + bytes(
            a ^ b for a, b in zip(plaintext, _hash_keystream(key, iv, len(plaintext)))
        )

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        if len(blob) < 16:
            raise ValueError("symmetric ciphertext too short")
        iv, body = blob[:16], blob[16:]
        return bytes(a ^ b for a, b in zip(body, _hash_keystream(key, iv, len(body))))

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


@dataclass
class SimCryptoProvider(CryptoProvider):
    """Simulation stand-in: keyed BLAKE2 pseudonyms + token envelopes.

    For very large performance simulations (hundreds of thousands of
    requests) even the hash-based provider's RSA operations dominate
    Python run time.  This provider replaces the *asymmetric* envelope
    with an in-process token registry that enforces key possession
    (decryption checks the private key's modulus) and the symmetric
    primitives with keyed BLAKE2 — still real keyed transformations at
    C speed.  Time *costs* of the paper's crypto are charged by the
    simulator's cost model regardless of the provider in use, so
    latency results are identical; this provider only cuts host CPU.

    Not a cryptographic construction — use :class:`RealCryptoProvider`
    or :class:`FastCryptoProvider` anywhere security is under test.
    """

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    name = "sim"

    def __post_init__(self) -> None:
        self._asym_registry: dict = {}
        self._asym_counter = 0
        self._reverse_pseudonyms: dict = {}

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        self._asym_counter += 1
        token = b"ASYM:%d" % self._asym_counter
        self._asym_registry[token] = (public.public_key.n, plaintext)
        # Pad the token to a plausible envelope size so wire sizes stay
        # constant and realistic for the adversary's observations.
        return token.ljust(public.public_key.modulus_bytes + 16, b"\x00")

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        token = blob.rstrip(b"\x00")
        entry = self._asym_registry.get(token)
        if entry is None:
            raise ValueError("unknown asymmetric token (corrupted ciphertext?)")
        modulus, plaintext = entry
        if modulus != keys.private_key.n:
            raise ValueError("decryption attempted with the wrong layer's key")
        return plaintext

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        pseudonym = hashlib.blake2s(identifier, key=key[:32], digest_size=16).digest()
        self._reverse_pseudonyms[(key, pseudonym)] = identifier
        return pseudonym

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        identifier = self._reverse_pseudonyms.get((key, pseudonym))
        if identifier is None:
            raise ValueError("unknown pseudonym for this key")
        return identifier

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        iv = self.rng_bytes(16)
        stream = _blake_keystream(key, iv, len(plaintext))
        return iv + bytes(a ^ b for a, b in zip(plaintext, stream))

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        if len(blob) < 16:
            raise ValueError("symmetric ciphertext too short")
        iv, body = blob[:16], blob[16:]
        stream = _blake_keystream(key, iv, len(body))
        return bytes(a ^ b for a, b in zip(body, stream))

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


def _blake_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """Keyed-BLAKE2 keystream (fast path for the sim provider)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(
            hashlib.blake2s(iv + counter.to_bytes(4, "big"), key=key[:32]).digest()
        )
        counter += 1
    return bytes(out[:length])
