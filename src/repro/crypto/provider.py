"""Crypto provider interface used by the user-side library and proxies.

Three interchangeable implementations:

* :class:`RealCryptoProvider` — the paper's construction: RSA-OAEP for
  layer-addressed fields, AES-256-CTR with a constant IV for
  deterministic pseudonymization, AES-256-CTR with a random IV for the
  temporary-key protection of recommendation lists.  Ships a bounded
  LRU memo for pseudonym operations (hot user/item ids repeat heavily
  under the MovieLens workload) with hit/miss counters the metrics
  layer can sample.
* :class:`FastCryptoProvider` — functionally equivalent but built on
  SHA-256 primitives (Feistel permutation for deterministic
  pseudonyms, hash-keystream XOR for randomized symmetric encryption).
  RSA is kept for the asymmetric half.  Used for very large
  simulations where pure-Python AES would dominate run time.
* :class:`SimCryptoProvider` — keyed-BLAKE2 stand-in for the largest
  simulations; see its docstring for the caveats.

All are *real* transformations — ciphertexts are actually unreadable
without the key — so the privacy test-suite exercises genuine data
flow, not tags.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, List

from repro.crypto import ctr
from repro.crypto.keys import SYMMETRIC_KEY_BYTES, LayerKeys, LayerPublicMaterial
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.xor import xor_bytes

__all__ = [
    "CryptoProvider",
    "RealCryptoProvider",
    "FastCryptoProvider",
    "SimCryptoProvider",
]


class CryptoProvider:
    """Abstract interface for the protocol's cryptographic operations."""

    #: Human-readable name used in experiment configuration records.
    name = "abstract"

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        """Randomized public-key encryption addressed to one layer."""
        raise NotImplementedError

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        """Invert :meth:`asym_encrypt` with the layer's private key."""
        raise NotImplementedError

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        """Deterministic encryption of a fixed-size identifier."""
        raise NotImplementedError

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        """Invert :meth:`pseudonymize`."""
        raise NotImplementedError

    def pseudonymize_many(self, key: bytes, identifiers: Sequence[bytes]) -> List[bytes]:
        """Batched :meth:`pseudonymize` (providers may override)."""
        pseudonymize = self.pseudonymize
        return [pseudonymize(key, identifier) for identifier in identifiers]

    def depseudonymize_many(self, key: bytes, pseudonyms: Sequence[bytes]) -> List[bytes]:
        """Batched :meth:`depseudonymize` (providers may override)."""
        depseudonymize = self.depseudonymize
        return [depseudonymize(key, pseudonym) for pseudonym in pseudonyms]

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        """Randomized symmetric encryption (temporary-key payloads)."""
        raise NotImplementedError

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        """Invert :meth:`sym_encrypt`."""
        raise NotImplementedError

    def new_temporary_key(self) -> bytes:
        """Fresh per-request temporary key ``k_u``."""
        return os.urandom(SYMMETRIC_KEY_BYTES)


class _LruMemo:
    """Bounded insertion-ordered memo with hit/miss counters.

    Plain dict (insertion-ordered) with move-to-back on hit and
    evict-front on overflow; a ``maxsize`` of 0 disables caching.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: dict = {}

    def get(self, key):
        value = self._data.pop(key, None)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data[key] = value  # re-insert: most recently used at back
        return value

    def put(self, key, value) -> None:
        if self.maxsize <= 0:
            return
        data = self._data
        if key not in data and len(data) >= self.maxsize:
            del data[next(iter(data))]
        data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        """Counters for the metrics layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


@dataclass
class RealCryptoProvider(CryptoProvider):
    """The paper's construction: RSA-OAEP + AES-256-CTR."""

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)
    #: Entries per direction of the pseudonym memo; 0 disables it.
    pseudonym_cache_size: int = 4096

    name = "real"

    def __post_init__(self) -> None:
        self._pseudonym_memo = _LruMemo(self.pseudonym_cache_size)
        self._depseudonym_memo = _LruMemo(self.pseudonym_cache_size)

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        key: RsaPublicKey = public.public_key
        if len(plaintext) <= key.max_message_bytes:
            # Direct OAEP; mark with a 0x00 prefix.
            return b"\x00" + key.encrypt(plaintext, self.rng_bytes)
        # Hybrid envelope for payloads larger than OAEP capacity:
        # RSA-OAEP(session key) || AES-CTR(payload).
        session_key = self.rng_bytes(SYMMETRIC_KEY_BYTES)
        header = key.encrypt(session_key, self.rng_bytes)
        body = ctr.rand_encrypt(session_key, plaintext, self.rng_bytes)
        return b"\x01" + header + body

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        if not blob:
            raise ValueError("empty asymmetric ciphertext")
        kind, rest = blob[0], blob[1:]
        if kind == 0:
            return keys.private_key.decrypt(rest)
        if kind == 1:
            modulus_bytes = keys.private_key.modulus_bytes
            session_key = keys.private_key.decrypt(rest[:modulus_bytes])
            return ctr.rand_decrypt(session_key, rest[modulus_bytes:])
        raise ValueError(f"unknown asymmetric envelope kind {kind}")

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        memo_key = (key, identifier)
        pseudonym = self._pseudonym_memo.get(memo_key)
        if pseudonym is None:
            pseudonym = ctr.det_encrypt(key, identifier)
            self._pseudonym_memo.put(memo_key, pseudonym)
            # Deterministic encryption is invertible, so seed the
            # reverse direction too: the IA de-pseudonymizes the very
            # ids it pseudonymized on the request path.
            self._depseudonym_memo.put((key, pseudonym), identifier)
        return pseudonym

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        memo_key = (key, pseudonym)
        identifier = self._depseudonym_memo.get(memo_key)
        if identifier is None:
            identifier = ctr.det_decrypt(key, pseudonym)
            self._depseudonym_memo.put(memo_key, identifier)
            self._pseudonym_memo.put((key, identifier), pseudonym)
        return identifier

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Pseudonym-memo hit/miss counters for the metrics layer."""
        return {
            "pseudonymize": self._pseudonym_memo.stats(),
            "depseudonymize": self._depseudonym_memo.stats(),
        }

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        return ctr.rand_encrypt(key, plaintext, self.rng_bytes)

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        return ctr.rand_decrypt(key, blob)

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


def _hash_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """SHA-256-based keystream: H(key || iv || counter) blocks."""
    sha256 = hashlib.sha256
    prefix = key + iv
    parts = [
        sha256(prefix + counter.to_bytes(4, "big")).digest()
        for counter in range((length + 31) // 32)
    ]
    return b"".join(parts)[:length]


def _feistel_round_key(key: bytes, round_index: int) -> bytes:
    return hmac.new(key, b"feistel-round-%d" % round_index, "sha256").digest()


def _feistel(key: bytes, block: bytes, rounds: range) -> bytes:
    """Balanced Feistel permutation over an even-length block.

    Deterministic and invertible (run *rounds* reversed to invert), so
    it plays the role AES-CTR-with-constant-IV plays in the paper: a
    keyed pseudonym that the owning layer can also reverse.
    """
    if len(block) % 2:
        raise ValueError("Feistel block length must be even")
    half = len(block) // 2
    left, right = block[:half], block[half:]
    for round_index in rounds:
        round_key = _feistel_round_key(key, round_index)
        digest = hmac.new(round_key, right, "sha256").digest()
        while len(digest) < half:
            digest += hmac.new(round_key, digest, "sha256").digest()
        left, right = right, xor_bytes(left, digest)
    return left + right


_FEISTEL_ROUNDS = 4


@dataclass
class FastCryptoProvider(CryptoProvider):
    """Hash-based provider: same interface, ~10x cheaper symmetric ops."""

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    name = "fast"

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        key: RsaPublicKey = public.public_key
        session_key = self.rng_bytes(SYMMETRIC_KEY_BYTES)
        header = key.encrypt(session_key, self.rng_bytes)
        iv = self.rng_bytes(16)
        body = iv + xor_bytes(plaintext, _hash_keystream(session_key, iv, len(plaintext)))
        return header + body

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        modulus_bytes = keys.private_key.modulus_bytes
        if len(blob) < modulus_bytes + 16:
            raise ValueError("asymmetric ciphertext too short")
        session_key = keys.private_key.decrypt(blob[:modulus_bytes])
        iv = blob[modulus_bytes:modulus_bytes + 16]
        body = blob[modulus_bytes + 16:]
        return xor_bytes(body, _hash_keystream(session_key, iv, len(body)))

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        # Pad odd-length input with an explicit marker byte pair.
        padded = identifier + (b"\x01" if len(identifier) % 2 else b"\x00\x00")
        return _feistel(key, padded, range(_FEISTEL_ROUNDS))

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        # Inverting a Feistel network: swap halves, run rounds reversed,
        # swap back.  Equivalently run with reversed round order on the
        # swapped block.
        half = len(pseudonym) // 2
        swapped = pseudonym[half:] + pseudonym[:half]
        out = _feistel(key, swapped, range(_FEISTEL_ROUNDS - 1, -1, -1))
        out = out[half:] + out[:half]
        if out.endswith(b"\x00\x00"):
            return out[:-2]
        if out.endswith(b"\x01"):
            return out[:-1]
        raise ValueError("corrupt pseudonym padding")

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        iv = self.rng_bytes(16)
        return iv + xor_bytes(plaintext, _hash_keystream(key, iv, len(plaintext)))

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        if len(blob) < 16:
            raise ValueError("symmetric ciphertext too short")
        iv, body = blob[:16], blob[16:]
        return xor_bytes(body, _hash_keystream(key, iv, len(body)))

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


@dataclass
class SimCryptoProvider(CryptoProvider):
    """Simulation stand-in: keyed BLAKE2 pseudonyms + token envelopes.

    For very large performance simulations (hundreds of thousands of
    requests) even the hash-based provider's RSA operations dominate
    Python run time.  This provider replaces the *asymmetric* envelope
    with an in-process token registry that enforces key possession
    (decryption checks the private key's modulus) and the symmetric
    primitives with keyed BLAKE2 — still real keyed transformations at
    C speed.  Time *costs* of the paper's crypto are charged by the
    simulator's cost model regardless of the provider in use, so
    latency results are identical; this provider only cuts host CPU.

    Not a cryptographic construction — use :class:`RealCryptoProvider`
    or :class:`FastCryptoProvider` anywhere security is under test.
    """

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    name = "sim"

    def __post_init__(self) -> None:
        self._asym_registry: dict = {}
        self._asym_counter = 0
        self._reverse_pseudonyms: dict = {}

    def asym_encrypt(self, public: LayerPublicMaterial, plaintext: bytes) -> bytes:
        self._asym_counter += 1
        token = b"ASYM:%d" % self._asym_counter
        self._asym_registry[token] = (public.public_key.n, plaintext)
        # Pad the token to a plausible envelope size so wire sizes stay
        # constant and realistic for the adversary's observations.
        return token.ljust(public.public_key.modulus_bytes + 16, b"\x00")

    def asym_decrypt(self, keys: LayerKeys, blob: bytes) -> bytes:
        token = blob.rstrip(b"\x00")
        entry = self._asym_registry.get(token)
        if entry is None:
            raise ValueError("unknown asymmetric token (corrupted ciphertext?)")
        modulus, plaintext = entry
        if modulus != keys.private_key.n:
            raise ValueError("decryption attempted with the wrong layer's key")
        return plaintext

    def pseudonymize(self, key: bytes, identifier: bytes) -> bytes:
        pseudonym = hashlib.blake2s(identifier, key=key[:32], digest_size=16).digest()
        self._reverse_pseudonyms[(key, pseudonym)] = identifier
        return pseudonym

    def depseudonymize(self, key: bytes, pseudonym: bytes) -> bytes:
        identifier = self._reverse_pseudonyms.get((key, pseudonym))
        if identifier is None:
            raise ValueError("unknown pseudonym for this key")
        return identifier

    def sym_encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        iv = self.rng_bytes(16)
        return iv + xor_bytes(plaintext, _blake_keystream(key, iv, len(plaintext)))

    def sym_decrypt(self, key: bytes, blob: bytes) -> bytes:
        if len(blob) < 16:
            raise ValueError("symmetric ciphertext too short")
        iv, body = blob[:16], blob[16:]
        return xor_bytes(body, _blake_keystream(key, iv, len(body)))

    def new_temporary_key(self) -> bytes:
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)


def _blake_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """Keyed-BLAKE2 keystream (fast path for the sim provider)."""
    blake2s = hashlib.blake2s
    short_key = key[:32]
    parts = [
        blake2s(iv + counter.to_bytes(4, "big"), key=short_key).digest()
        for counter in range((length + 31) // 32)
    ]
    return b"".join(parts)[:length]
