"""Whole-buffer XOR helper shared by every symmetric hot path.

Replaces the per-byte ``bytes(a ^ b for a, b in zip(data, stream))``
idiom that used to appear in :mod:`repro.crypto.ctr` and all three
crypto providers.  A single ``int.from_bytes`` / XOR / ``to_bytes``
round-trip runs the loop in C and is 20-50x faster on the 1 KiB
recommendation blobs the protocol exchanges.
"""

from __future__ import annotations

__all__ = ["xor_bytes"]


def xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR *data* against *keystream*, truncating to the shorter input.

    Matches ``zip`` semantics so callers may pass a keystream longer
    than the payload (e.g. a cached keystream prefix) without slicing
    first.
    """
    n = min(len(data), len(keystream))
    if n == 0:
        return b""
    return (
        int.from_bytes(data[:n], "big") ^ int.from_bytes(keystream[:n], "big")
    ).to_bytes(n, "big")
