"""Wire encodings: fixed-size identifiers and padded payloads.

Section 4.3 of the paper requires that "the size of all encrypted
messages is constant, by using fixed-size user and item identifiers,
and padding when necessary", and that recommendation lists have a
maximal size (20 in the paper's implementation) with pseudo-item
padding entries that the user-side library discards.  This module
implements both encodings, plus the base64 helpers the JSON wire
format needs (paper §5: "the encrypted content is handled and stored
in the base64 format").
"""

from __future__ import annotations

import base64
import warnings
from typing import Any, List, Sequence

__all__ = [
    "FIXED_ID_BYTES",
    "MAX_RECOMMENDATIONS",
    "EnvelopeCodec",
    "PaddingError",
    "encode_identifier",
    "decode_identifier",
    "is_padding_item",
    "pad_item_list",
    "strip_padding_items",
    "b64",
    "unb64",
]

# Fixed on-the-wire size of an encoded user or item identifier.  Large
# enough for realistic catalog identifiers, small enough to keep the
# pure-Python crypto fast.
FIXED_ID_BYTES = 48

# Maximal size of a recommendation list; shorter lists are padded with
# pseudo-items (paper §4.3 uses the same constant).
MAX_RECOMMENDATIONS = 20

# Marker prefix for padding pseudo-items.  Real identifiers are padded
# with a length prefix, so no real identifier can collide with this.
_PAD_SENTINEL = "\x00pprox-pad:"


class PaddingError(ValueError):
    """Raised when an identifier does not fit the fixed-size encoding."""


def encode_identifier(identifier: str) -> bytes:
    """Encode *identifier* into exactly :data:`FIXED_ID_BYTES` bytes.

    Layout: 2-byte big-endian length, UTF-8 bytes, zero padding.
    """
    raw = identifier.encode("utf-8")
    if len(raw) > FIXED_ID_BYTES - 2:
        raise PaddingError(
            f"identifier too long for fixed-size encoding:"
            f" {len(raw)} > {FIXED_ID_BYTES - 2} bytes"
        )
    return len(raw).to_bytes(2, "big") + raw + bytes(FIXED_ID_BYTES - 2 - len(raw))


def decode_identifier(blob: bytes) -> str:
    """Invert :func:`encode_identifier`."""
    if len(blob) != FIXED_ID_BYTES:
        raise PaddingError(
            f"encoded identifier must be {FIXED_ID_BYTES} bytes, got {len(blob)}"
        )
    length = int.from_bytes(blob[:2], "big")
    if length > FIXED_ID_BYTES - 2:
        raise PaddingError("corrupt identifier length prefix")
    if any(blob[2 + length:]):
        raise PaddingError("nonzero bytes in identifier padding")
    return blob[2:2 + length].decode("utf-8")


def pad_item_list(items: Sequence[str], size: int = MAX_RECOMMENDATIONS) -> List[str]:
    """Pad *items* with pseudo-items up to *size* entries.

    The padding entries are deterministic in position only; their
    content is a sentinel the user-side library recognises and drops.
    """
    if len(items) > size:
        raise PaddingError(f"item list longer than padded size: {len(items)} > {size}")
    padded = list(items)
    for index in range(size - len(items)):
        padded.append(f"{_PAD_SENTINEL}{index}")
    return padded


def strip_padding_items(items: Sequence[str]) -> List[str]:
    """Remove pseudo-items inserted by :func:`pad_item_list`."""
    return [item for item in items if not item.startswith(_PAD_SENTINEL)]


def is_padding_item(item: str) -> bool:
    """True when *item* is a padding pseudo-item."""
    return item.startswith(_PAD_SENTINEL)


def _b64(data: bytes) -> str:
    """Base64-encode *data* for embedding in a JSON payload."""
    return base64.b64encode(bytes(data)).decode("ascii")


def _unb64(text: str) -> bytes:
    """Invert :func:`_b64`."""
    return base64.b64decode(text.encode("ascii"), validate=True)


def b64(data: bytes) -> str:
    """Deprecated alias of :meth:`EnvelopeCodec.wire_text`.

    Kept for byte-compatibility with the seed wire format; new code
    goes through the codec surface so the text representation is an
    explicit choice rather than an ambient assumption.
    """
    warnings.warn(
        "repro.crypto.envelope.b64() is deprecated; use"
        " EnvelopeCodec.wire_text() or a WireCodec's wire_value()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _b64(data)


def unb64(text: str) -> bytes:
    """Deprecated alias of :meth:`EnvelopeCodec.wire_blob`."""
    warnings.warn(
        "repro.crypto.envelope.unb64() is deprecated; use"
        " EnvelopeCodec.wire_blob() or a WireCodec's blob_value()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _unb64(text)


class EnvelopeCodec:
    """Batch-first envelope crypto over a :class:`CryptoProvider`.

    The seed sealed one hybrid RSA-OAEP envelope *per request*; at a
    shuffle batch of ``S`` requests that is ``S`` asymmetric
    operations per flush.  :meth:`seal_batch` concatenates the batch
    into one length-prefixed buffer and seals it once — one OAEP
    operation plus a single AES-CTR pass over the whole buffer (which
    the provider serves from the PR 1 batched keystream cache).
    :meth:`open_batch` inverts it with one asymmetric decryption and
    returns zero-copy ``memoryview`` slices of the plaintext.

    :meth:`seal_each` / :meth:`open_each` are the per-request
    reference used by the wire bench to measure the amortization.
    """

    name = "envelope"

    def __init__(self, provider: Any) -> None:
        self.provider = provider

    # -- wire text representation (replaces free-function b64/unb64) --

    @staticmethod
    def wire_text(blob: bytes) -> str:
        """Canonical text form of a binary blob (base64, paper §5)."""
        return _b64(blob)

    @staticmethod
    def wire_blob(text: Any) -> bytes:
        """Invert :meth:`wire_text`; bytes-like values pass through."""
        if isinstance(text, (bytes, bytearray, memoryview)):
            return bytes(text)
        return _unb64(text)

    # -- batched identifier encoding ----------------------------------

    @staticmethod
    def encode_identifiers(identifiers: Sequence[str]) -> List[bytes]:
        """Fixed-size encode a whole item list in one call."""
        return [encode_identifier(identifier) for identifier in identifiers]

    @staticmethod
    def decode_identifiers(blobs: Sequence[Any]) -> List[str]:
        """Invert :meth:`encode_identifiers` (accepts memoryviews)."""
        return [
            decode_identifier(blob if isinstance(blob, bytes) else bytes(blob))
            for blob in blobs
        ]

    # -- batch framing -------------------------------------------------

    @staticmethod
    def pack_frames(frames: Sequence[Any]) -> bytes:
        """Concatenate *frames* into one length-prefixed buffer."""
        parts = [len(frames).to_bytes(4, "big")]
        for frame in frames:
            raw = bytes(frame)
            parts.append(len(raw).to_bytes(4, "big"))
            parts.append(raw)
        return b"".join(parts)

    @staticmethod
    def unpack_frames(data: Any) -> List[memoryview]:
        """Split a packed buffer into zero-copy frame views."""
        view = memoryview(data) if not isinstance(data, memoryview) else data
        if len(view) < 4:
            raise PaddingError("batch buffer shorter than its count prefix")
        count = int.from_bytes(view[:4], "big")
        frames: List[memoryview] = []
        offset = 4
        for _ in range(count):
            if offset + 4 > len(view):
                raise PaddingError("truncated batch frame length")
            length = int.from_bytes(view[offset:offset + 4], "big")
            offset += 4
            if offset + length > len(view):
                raise PaddingError("truncated batch frame body")
            frames.append(view[offset:offset + length])
            offset += length
        if offset != len(view):
            raise PaddingError("trailing bytes after final batch frame")
        return frames

    # -- batch envelopes -----------------------------------------------

    def seal_batch(self, public: Any, frames: Sequence[Any]) -> bytes:
        """One hybrid envelope for a whole shuffle batch."""
        return self.provider.asym_encrypt(public, self.pack_frames(frames))

    def open_batch(self, keys: Any, blob: Any) -> List[memoryview]:
        """Invert :meth:`seal_batch`; one asymmetric op per batch."""
        return self.unpack_frames(self.provider.asym_decrypt(keys, bytes(blob)))

    # -- per-request reference (what the batch API amortizes) ----------

    def seal_each(self, public: Any, frames: Sequence[Any]) -> List[bytes]:
        """Seed behaviour: one envelope per request."""
        return [self.provider.asym_encrypt(public, bytes(frame)) for frame in frames]

    def open_each(self, keys: Any, blobs: Sequence[Any]) -> List[bytes]:
        """Invert :meth:`seal_each`."""
        return [self.provider.asym_decrypt(keys, bytes(blob)) for blob in blobs]
