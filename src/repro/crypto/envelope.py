"""Wire encodings: fixed-size identifiers and padded payloads.

Section 4.3 of the paper requires that "the size of all encrypted
messages is constant, by using fixed-size user and item identifiers,
and padding when necessary", and that recommendation lists have a
maximal size (20 in the paper's implementation) with pseudo-item
padding entries that the user-side library discards.  This module
implements both encodings, plus the base64 helpers the JSON wire
format needs (paper §5: "the encrypted content is handled and stored
in the base64 format").
"""

from __future__ import annotations

import base64
from typing import List, Sequence

__all__ = [
    "FIXED_ID_BYTES",
    "MAX_RECOMMENDATIONS",
    "PaddingError",
    "encode_identifier",
    "decode_identifier",
    "is_padding_item",
    "pad_item_list",
    "strip_padding_items",
    "b64",
    "unb64",
]

# Fixed on-the-wire size of an encoded user or item identifier.  Large
# enough for realistic catalog identifiers, small enough to keep the
# pure-Python crypto fast.
FIXED_ID_BYTES = 48

# Maximal size of a recommendation list; shorter lists are padded with
# pseudo-items (paper §4.3 uses the same constant).
MAX_RECOMMENDATIONS = 20

# Marker prefix for padding pseudo-items.  Real identifiers are padded
# with a length prefix, so no real identifier can collide with this.
_PAD_SENTINEL = "\x00pprox-pad:"


class PaddingError(ValueError):
    """Raised when an identifier does not fit the fixed-size encoding."""


def encode_identifier(identifier: str) -> bytes:
    """Encode *identifier* into exactly :data:`FIXED_ID_BYTES` bytes.

    Layout: 2-byte big-endian length, UTF-8 bytes, zero padding.
    """
    raw = identifier.encode("utf-8")
    if len(raw) > FIXED_ID_BYTES - 2:
        raise PaddingError(
            f"identifier too long for fixed-size encoding:"
            f" {len(raw)} > {FIXED_ID_BYTES - 2} bytes"
        )
    return len(raw).to_bytes(2, "big") + raw + bytes(FIXED_ID_BYTES - 2 - len(raw))


def decode_identifier(blob: bytes) -> str:
    """Invert :func:`encode_identifier`."""
    if len(blob) != FIXED_ID_BYTES:
        raise PaddingError(
            f"encoded identifier must be {FIXED_ID_BYTES} bytes, got {len(blob)}"
        )
    length = int.from_bytes(blob[:2], "big")
    if length > FIXED_ID_BYTES - 2:
        raise PaddingError("corrupt identifier length prefix")
    if any(blob[2 + length:]):
        raise PaddingError("nonzero bytes in identifier padding")
    return blob[2:2 + length].decode("utf-8")


def pad_item_list(items: Sequence[str], size: int = MAX_RECOMMENDATIONS) -> List[str]:
    """Pad *items* with pseudo-items up to *size* entries.

    The padding entries are deterministic in position only; their
    content is a sentinel the user-side library recognises and drops.
    """
    if len(items) > size:
        raise PaddingError(f"item list longer than padded size: {len(items)} > {size}")
    padded = list(items)
    for index in range(size - len(items)):
        padded.append(f"{_PAD_SENTINEL}{index}")
    return padded


def strip_padding_items(items: Sequence[str]) -> List[str]:
    """Remove pseudo-items inserted by :func:`pad_item_list`."""
    return [item for item in items if not item.startswith(_PAD_SENTINEL)]


def is_padding_item(item: str) -> bool:
    """True when *item* is a padding pseudo-item."""
    return item.startswith(_PAD_SENTINEL)


def b64(data: bytes) -> str:
    """Base64-encode *data* for embedding in a JSON payload."""
    return base64.b64encode(data).decode("ascii")


def unb64(text: str) -> bytes:
    """Invert :func:`b64`."""
    return base64.b64decode(text.encode("ascii"), validate=True)
