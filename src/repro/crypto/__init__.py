"""Cryptographic substrate for the PProx reproduction.

Everything the protocol in the paper needs, built from scratch:

* :mod:`repro.crypto.aes` — AES block cipher (FIPS-197).
* :mod:`repro.crypto.ctr` — deterministic (constant-IV) and randomized
  AES-CTR, matching the paper's use of Intel SGX-SSL.
* :mod:`repro.crypto.rsa` — RSA-OAEP with Miller-Rabin key generation.
* :mod:`repro.crypto.keys` — per-layer key material (Table 1).
* :mod:`repro.crypto.envelope` — fixed-size identifier encoding and
  padded recommendation lists (§4.3), base64/JSON helpers.
* :mod:`repro.crypto.provider` — the provider interface with a
  faithful ``real`` implementation and cheaper ``fast``/``sim`` ones
  for large simulations.
* :mod:`repro.crypto.xor` — the whole-buffer XOR primitive shared by
  every symmetric hot path.
* :mod:`repro.crypto.reference` — the seed's straight-line AES/CTR,
  kept as the byte-identical correctness anchor and perf baseline.
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.ctr import det_decrypt, det_encrypt, keyed_pseudonym, rand_decrypt, rand_encrypt
from repro.crypto.envelope import (
    FIXED_ID_BYTES,
    MAX_RECOMMENDATIONS,
    EnvelopeCodec,
    PaddingError,
    decode_identifier,
    encode_identifier,
    pad_item_list,
    strip_padding_items,
)
from repro.crypto.keys import KeyFactory, LayerKeys, LayerPublicMaterial, SYMMETRIC_KEY_BYTES
from repro.crypto.provider import (
    CryptoProvider,
    FastCryptoProvider,
    RealCryptoProvider,
    SimCryptoProvider,
)
from repro.crypto.rsa import OaepError, RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.crypto.xor import xor_bytes

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "det_encrypt",
    "det_decrypt",
    "keyed_pseudonym",
    "rand_encrypt",
    "rand_decrypt",
    "xor_bytes",
    "FIXED_ID_BYTES",
    "MAX_RECOMMENDATIONS",
    "EnvelopeCodec",
    "PaddingError",
    "encode_identifier",
    "decode_identifier",
    "pad_item_list",
    "strip_padding_items",
    "KeyFactory",
    "LayerKeys",
    "LayerPublicMaterial",
    "SYMMETRIC_KEY_BYTES",
    "CryptoProvider",
    "RealCryptoProvider",
    "FastCryptoProvider",
    "SimCryptoProvider",
    "OaepError",
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
]
