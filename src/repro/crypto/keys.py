"""Key material for the two PProx proxy layers (paper Table 1).

Each layer owns an asymmetric keypair (``pk``/``sk``) used by the
user-side library to address fields to exactly one layer, and a
permanent symmetric key (``kUA`` / ``kIA``) used for deterministic
pseudonymization of user and item identifiers.  A per-request
temporary key ``k_u`` protects the recommendation list on its way
back through the UA layer.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair

__all__ = ["LayerKeys", "LayerPublicMaterial", "KeyFactory", "SYMMETRIC_KEY_BYTES"]

SYMMETRIC_KEY_BYTES = 32  # AES-256 as in the paper.


@dataclass(frozen=True)
class LayerPublicMaterial:
    """The public half of a layer's key material (safe to publish)."""

    public_key: RsaPublicKey


@dataclass(frozen=True)
class LayerKeys:
    """Full key material provisioned into one proxy layer's enclaves.

    All enclaves of the same layer share the same keys (paper §5,
    Horizontal scaling), so a :class:`LayerKeys` instance is created
    once per layer by the RaaS client application and provisioned to
    every attested enclave of that layer.
    """

    private_key: RsaPrivateKey
    symmetric_key: bytes

    def __post_init__(self) -> None:
        if len(self.symmetric_key) != SYMMETRIC_KEY_BYTES:
            raise ValueError(
                f"layer symmetric key must be {SYMMETRIC_KEY_BYTES} bytes,"
                f" got {len(self.symmetric_key)}"
            )

    @property
    def public_material(self) -> LayerPublicMaterial:
        """The publishable half of this material."""
        return LayerPublicMaterial(public_key=self.private_key.public_key)

    @property
    def fingerprint(self) -> str:
        """Short digest of the public modulus.

        Identity-free (derived from public material only — no secret
        bytes enter the hash) and stable per generation, so telemetry
        can correlate an epoch announcement with the keys an enclave
        was provisioned without ever serializing key material.
        """
        modulus = self.private_key.public_key.n
        return hashlib.sha256(str(modulus).encode("ascii")).hexdigest()[:16]


@dataclass
class KeyFactory:
    """Generates key material; seedable for reproducible experiments."""

    rsa_bits: int = 1024
    rng_int: Optional[Callable[[int], int]] = None
    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)

    def layer_keys(self) -> LayerKeys:
        """Generate fresh key material for one proxy layer."""
        _, private_key = generate_keypair(self.rsa_bits, self.rng_int)
        return LayerKeys(
            private_key=private_key,
            symmetric_key=self.rng_bytes(SYMMETRIC_KEY_BYTES),
        )

    def temporary_key(self) -> bytes:
        """Generate a per-request temporary symmetric key ``k_u``."""
        return self.rng_bytes(SYMMETRIC_KEY_BYTES)
