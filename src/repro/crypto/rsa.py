"""RSA with OAEP padding, implemented from scratch.

The paper's proxy service uses RSA (via Intel SGX-SSL) for the
asymmetric half of the protocol: the user-side library encrypts the
user identifier under ``pkUA`` and item identifiers / temporary keys
under ``pkIA`` so that exactly one proxy layer can read each field.

Key generation uses Miller-Rabin probabilistic primality testing and a
CRT-accelerated private operation.  Default modulus size is 1024 bits
— small by deployment standards but sound for a simulation, and fast
enough to run thousands of real decryptions inside the benchmarks (the
key size is configurable up to 3072 bits).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Optional, Tuple

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair", "OaepError"]

_E = 65537

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
                 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113]


class OaepError(ValueError):
    """Raised when OAEP decoding fails (wrong key or corrupted data)."""


def _is_probable_prime(candidate: int, rng: Callable[[int], int], rounds: int = 16) -> bool:
    """Miller-Rabin primality test with *rounds* random bases."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        base = rng(candidate - 3) + 2
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: Callable[[int], int]) -> int:
    """Sample a random prime with exactly *bits* bits."""
    while True:
        candidate = rng(1 << (bits - 2)) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)`` with OAEP encryption."""

    n: int
    e: int = _E

    @property
    def modulus_bytes(self) -> int:
        """Length of the modulus in bytes."""
        return (self.n.bit_length() + 7) // 8

    @property
    def max_message_bytes(self) -> int:
        """Largest plaintext OAEP can carry under this key (SHA-256)."""
        return self.modulus_bytes - 2 * hashlib.sha256().digest_size - 2

    def encrypt(self, message: bytes, rng: Optional[Callable[[int], bytes]] = None) -> bytes:
        """OAEP-encrypt *message*; result is ``modulus_bytes`` long.

        Encryption is randomized: two encryptions of the same message
        differ, which is exactly why the ciphertext of a user id cannot
        serve as its pseudonym (paper §4.1).
        """
        padded = _oaep_encode(message, self.modulus_bytes, rng or os.urandom)
        value = pow(int.from_bytes(padded, "big"), self.e, self.n)
        return value.to_bytes(self.modulus_bytes, "big")


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast decryption."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def modulus_bytes(self) -> int:
        """Length of the modulus in bytes."""
        return (self.n.bit_length() + 7) // 8

    def decrypt(self, ciphertext: bytes) -> bytes:
        """OAEP-decrypt a ciphertext produced by the matching public key."""
        if len(ciphertext) != self.modulus_bytes:
            raise OaepError(
                f"ciphertext length {len(ciphertext)} != modulus length {self.modulus_bytes}"
            )
        value = int.from_bytes(ciphertext, "big")
        if value >= self.n:
            raise OaepError("ciphertext value out of range")
        padded = self._crt_power(value).to_bytes(self.modulus_bytes, "big")
        return _oaep_decode(padded, self.modulus_bytes)

    @cached_property
    def _crt_params(self) -> Tuple[int, int, int]:
        """Cached CRT exponents and inverse: ``(dp, dq, q_inv)``."""
        return self.d % (self.p - 1), self.d % (self.q - 1), pow(self.q, -1, self.p)

    def _crt_power(self, value: int) -> int:
        """Compute ``value ** d mod n`` using the Chinese Remainder Theorem."""
        dp, dq, q_inv = self._crt_params
        m1 = pow(value % self.p, dp, self.p)
        m2 = pow(value % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


def generate_keypair(
    bits: int = 1024, rng: Optional[Callable[[int], int]] = None
) -> Tuple[RsaPublicKey, RsaPrivateKey]:
    """Generate an RSA keypair with a *bits*-bit modulus.

    *rng* maps an exclusive upper bound to a uniform integer in
    ``[0, bound)``; defaults to a CSPRNG.  Supplying a seeded rng makes
    key generation reproducible for tests.
    """
    if bits < 832:
        # OAEP with SHA-256 needs 2*32+2 = 66 bytes of overhead, and the
        # hybrid envelope must fit a 32-byte session key on top.
        raise ValueError("modulus must be at least 832 bits to carry OAEP payloads")
    if rng is None:
        def rng(bound: int) -> int:
            return int.from_bytes(os.urandom((bound.bit_length() + 7) // 8 + 8), "big") % bound

    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _E == 0:
            continue
        d = pow(_E, -1, phi)
        return RsaPublicKey(n=n, e=_E), RsaPrivateKey(n=n, e=_E, d=d, p=p, q=q)


def _mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function with SHA-256."""
    output = bytearray()
    counter = 0
    while len(output) < length:
        output.extend(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(output[:length])


def _oaep_encode(message: bytes, modulus_bytes: int, random_bytes: Callable[[int], bytes]) -> bytes:
    """RSAES-OAEP encoding (empty label, SHA-256)."""
    hash_len = hashlib.sha256().digest_size
    max_message = modulus_bytes - 2 * hash_len - 2
    if len(message) > max_message:
        raise OaepError(f"message too long for OAEP: {len(message)} > {max_message}")
    label_hash = hashlib.sha256(b"").digest()
    padding = b"\x00" * (max_message - len(message))
    data_block = label_hash + padding + b"\x01" + message
    seed = random_bytes(hash_len)
    masked_db = bytes(a ^ b for a, b in zip(data_block, _mgf1(seed, len(data_block))))
    masked_seed = bytes(a ^ b for a, b in zip(seed, _mgf1(masked_db, hash_len)))
    return b"\x00" + masked_seed + masked_db


def _oaep_decode(padded: bytes, modulus_bytes: int) -> bytes:
    """RSAES-OAEP decoding; raises :class:`OaepError` on any mismatch."""
    hash_len = hashlib.sha256().digest_size
    if len(padded) != modulus_bytes or padded[0] != 0:
        raise OaepError("malformed OAEP block")
    masked_seed = padded[1:1 + hash_len]
    masked_db = padded[1 + hash_len:]
    seed = bytes(a ^ b for a, b in zip(masked_seed, _mgf1(masked_db, hash_len)))
    data_block = bytes(a ^ b for a, b in zip(masked_db, _mgf1(seed, len(masked_db))))
    label_hash = hashlib.sha256(b"").digest()
    if data_block[:hash_len] != label_hash:
        raise OaepError("OAEP label hash mismatch")
    separator = data_block.find(b"\x01", hash_len)
    if separator == -1 or any(data_block[hash_len:separator]):
        raise OaepError("OAEP padding separator not found")
    return data_block[separator + 1:]
