"""Straight-line reference AES/CTR — the seed implementation, kept.

This module preserves the original per-byte implementation that the
T-table rewrite in :mod:`repro.crypto.aes` replaced.  It exists for
two reasons:

* **Correctness anchor** — the cross-check tests assert the optimized
  cipher is *byte-identical* to this one on random keys and lengths,
  which is what keeps deterministic pseudonyms stable across the
  optimization (paper §4.1: pseudonym stability is a correctness
  property).
* **Perf trajectory** — ``benchmarks/run_crypto_bench.py`` measures
  the optimized stack against this baseline and records the speedups
  in ``BENCH_crypto.json`` so future PRs can regress against them.

Never import this from production code paths; it is deliberately the
slow, obviously-correct formulation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.aes import (  # reuse the table *constructions*, not the cipher
    BLOCK_SIZE,
    _INV_SBOX,
    _MUL2,
    _MUL3,
    _MUL9,
    _MUL11,
    _MUL13,
    _MUL14,
    _RCON,
    _SBOX,
)

__all__ = ["ReferenceAES", "reference_ctr_transform", "reference_det_encrypt"]

# ShiftRows permutation of the 16-byte state laid out column-major
# (byte index = 4*col + row as in FIPS-197's one-dimensional layout).
_SHIFT_ROWS = (0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)
_INV_SHIFT_ROWS = (0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3)

# The constant IV of repro.crypto.ctr.det_encrypt.
_DETERMINISTIC_IV = bytes(BLOCK_SIZE)


class ReferenceAES:
    """The seed's per-byte AES block cipher (FIPS-197, unoptimized)."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self._key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self._key)

    def _expand_key(self, key: bytes) -> List[bytes]:
        key_words = len(key) // 4
        total_words = 4 * (self._rounds + 1)
        words = [key[4 * i:4 * i + 4] for i in range(key_words)]
        for i in range(key_words, total_words):
            temp = words[i - 1]
            if i % key_words == 0:
                temp = bytes(
                    (
                        _SBOX[temp[1]] ^ _RCON[i // key_words - 1],
                        _SBOX[temp[2]],
                        _SBOX[temp[3]],
                        _SBOX[temp[0]],
                    )
                )
            elif key_words > 6 and i % key_words == 4:
                temp = bytes(_SBOX[b] for b in temp)
            prev = words[i - key_words]
            words.append(bytes(a ^ b for a, b in zip(prev, temp)))
        return [b"".join(words[4 * r:4 * r + 4]) for r in range(self._rounds + 1)]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(a ^ b for a, b in zip(block, self._round_keys[0]))
        for round_index in range(1, self._rounds):
            state = self._round(state, self._round_keys[round_index])
        sbox = _SBOX
        shifted = bytearray(sbox[state[_SHIFT_ROWS[i]]] for i in range(16))
        last_key = self._round_keys[self._rounds]
        return bytes(shifted[i] ^ last_key[i] for i in range(16))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(a ^ b for a, b in zip(block, self._round_keys[self._rounds]))
        inv_sbox = _INV_SBOX
        state = bytearray(inv_sbox[state[_INV_SHIFT_ROWS[i]]] for i in range(16))
        for round_index in range(self._rounds - 1, 0, -1):
            round_key = self._round_keys[round_index]
            state = bytearray(state[i] ^ round_key[i] for i in range(16))
            state = self._inv_mix_columns(state)
            state = bytearray(inv_sbox[state[_INV_SHIFT_ROWS[i]]] for i in range(16))
        first_key = self._round_keys[0]
        return bytes(state[i] ^ first_key[i] for i in range(16))

    @staticmethod
    def _round(state: Sequence[int], round_key: bytes) -> bytearray:
        sbox = _SBOX
        shifted = [sbox[state[_SHIFT_ROWS[i]]] for i in range(16)]
        mul2, mul3 = _MUL2, _MUL3
        output = bytearray(16)
        for col in range(4):
            base = 4 * col
            s0, s1, s2, s3 = shifted[base:base + 4]
            output[base] = mul2[s0] ^ mul3[s1] ^ s2 ^ s3 ^ round_key[base]
            output[base + 1] = s0 ^ mul2[s1] ^ mul3[s2] ^ s3 ^ round_key[base + 1]
            output[base + 2] = s0 ^ s1 ^ mul2[s2] ^ mul3[s3] ^ round_key[base + 2]
            output[base + 3] = mul3[s0] ^ s1 ^ s2 ^ mul2[s3] ^ round_key[base + 3]
        return output

    @staticmethod
    def _inv_mix_columns(state: Sequence[int]) -> bytearray:
        mul9, mul11, mul13, mul14 = _MUL9, _MUL11, _MUL13, _MUL14
        output = bytearray(16)
        for col in range(4):
            base = 4 * col
            s0, s1, s2, s3 = state[base:base + 4]
            output[base] = mul14[s0] ^ mul11[s1] ^ mul13[s2] ^ mul9[s3]
            output[base + 1] = mul9[s0] ^ mul14[s1] ^ mul11[s2] ^ mul13[s3]
            output[base + 2] = mul13[s0] ^ mul9[s1] ^ mul14[s2] ^ mul11[s3]
            output[base + 3] = mul11[s0] ^ mul13[s1] ^ mul9[s2] ^ mul14[s3]
        return output


def reference_ctr_transform(key: bytes, iv: bytes, data: bytes) -> bytes:
    """The seed's AES-CTR: one ``to_bytes`` and per-byte XOR per block."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = ReferenceAES(key)
    counter = int.from_bytes(iv, "big")
    out = bytearray()
    for offset in range(0, len(data), BLOCK_SIZE):
        keystream = cipher.encrypt_block(
            (counter & ((1 << 128) - 1)).to_bytes(BLOCK_SIZE, "big")
        )
        chunk = data[offset:offset + BLOCK_SIZE]
        out.extend(a ^ b for a, b in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def reference_det_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """The seed's deterministic (constant-IV) encryption."""
    return reference_ctr_transform(key, _DETERMINISTIC_IV, plaintext)
