"""Pure-Python AES block cipher (FIPS-197), T-table implementation.

The paper's proxy enclaves use Intel SGX-SSL with AES-256 in CTR mode
for pseudonymization (constant IV, deterministic) and for protecting
recommendation lists (random IV).  This module provides the block
primitive; :mod:`repro.crypto.ctr` builds the CTR modes on top.

Supports 128-, 192- and 256-bit keys.  The hot path is the classic
32-bit T-table formulation: four combined SubBytes+MixColumns lookup
tables (built once at import), state and round keys held as four
big-endian 32-bit column words, four table lookups + XORs per column
per round.  Decryption uses the equivalent inverse cipher with
InvMixColumns folded into the decryption key schedule.  This is the
standard 4-8x win over a per-byte ``bytearray`` round function while
producing byte-identical ciphertexts.
"""

from __future__ import annotations

from struct import Struct
from typing import List, Tuple

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# Round constants for key expansion.
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


def _build_sbox() -> bytes:
    """Construct the AES S-box from the finite-field definition."""
    # Multiplicative inverse table in GF(2^8) via exp/log tables with
    # generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 3: x * 3 = x ^ (x << 1)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            result ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = result
    return bytes(sbox)


_SBOX = _build_sbox()
_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Per-byte multiplication tables; used to build the T-tables and the
# InvMixColumns fold-in of the decryption key schedule.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))
_MUL9 = bytes(_gf_mul(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul(i, 14) for i in range(256))


def _build_t_tables() -> Tuple[tuple, tuple, tuple, tuple, tuple, tuple, tuple, tuple]:
    """Build the four encryption and four decryption T-tables.

    ``Te0[x]`` is the MixColumns contribution of a state byte ``x``
    (after SubBytes) landing in row 0 of a column, as one big-endian
    32-bit word; ``Te1``-``Te3`` are the row-1..3 rotations.  The
    ``Td`` tables combine InvSubBytes with InvMixColumns likewise.
    """
    te0, te1, te2, te3 = [], [], [], []
    td0, td1, td2, td3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        word = (_MUL2[s] << 24) | (s << 16) | (s << 8) | _MUL3[s]
        te0.append(word)
        te1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        te2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        te3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
        si = _INV_SBOX[x]
        iword = (_MUL14[si] << 24) | (_MUL9[si] << 16) | (_MUL13[si] << 8) | _MUL11[si]
        td0.append(iword)
        td1.append(((iword >> 8) | (iword << 24)) & 0xFFFFFFFF)
        td2.append(((iword >> 16) | (iword << 16)) & 0xFFFFFFFF)
        td3.append(((iword >> 24) | (iword << 8)) & 0xFFFFFFFF)
    return (
        tuple(te0), tuple(te1), tuple(te2), tuple(te3),
        tuple(td0), tuple(td1), tuple(td2), tuple(td3),
    )


_TE0, _TE1, _TE2, _TE3, _TD0, _TD1, _TD2, _TD3 = _build_t_tables()

_PACK4 = Struct(">4I")


def _inv_mix_word(word: int) -> int:
    """InvMixColumns applied to one 32-bit column word."""
    b0 = (word >> 24) & 0xFF
    b1 = (word >> 16) & 0xFF
    b2 = (word >> 8) & 0xFF
    b3 = word & 0xFF
    return (
        ((_MUL14[b0] ^ _MUL11[b1] ^ _MUL13[b2] ^ _MUL9[b3]) << 24)
        | ((_MUL9[b0] ^ _MUL14[b1] ^ _MUL11[b2] ^ _MUL13[b3]) << 16)
        | ((_MUL13[b0] ^ _MUL9[b1] ^ _MUL14[b2] ^ _MUL11[b3]) << 8)
        | (_MUL11[b0] ^ _MUL13[b1] ^ _MUL9[b2] ^ _MUL14[b3])
    )


class AES:
    """AES block cipher over 16-byte blocks.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes of key material.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self._key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._enc_keys = self._expand_key(self._key)
        self._dec_keys = self._invert_key_schedule(self._enc_keys)
        # Group the flat word schedules into per-round 4-tuples so the
        # round loops unpack one tuple per round instead of doing four
        # index additions.
        self._enc_first = tuple(self._enc_keys[0:4])
        self._enc_mid = [
            tuple(self._enc_keys[4 * r:4 * r + 4]) for r in range(1, self._rounds)
        ]
        self._enc_last = tuple(self._enc_keys[4 * self._rounds:4 * self._rounds + 4])
        self._dec_first = tuple(self._dec_keys[0:4])
        self._dec_mid = [
            tuple(self._dec_keys[4 * r:4 * r + 4]) for r in range(1, self._rounds)
        ]
        self._dec_last = tuple(self._dec_keys[4 * self._rounds:4 * self._rounds + 4])

    @property
    def key_size(self) -> int:
        """Key length in bytes."""
        return len(self._key)

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size."""
        return self._rounds

    def _expand_key(self, key: bytes) -> List[int]:
        """Expand *key* into ``4 * (rounds + 1)`` 32-bit round-key words."""
        key_words = len(key) // 4
        total_words = 4 * (self._rounds + 1)
        words = [int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(key_words)]
        sbox = _SBOX
        for i in range(key_words, total_words):
            temp = words[i - 1]
            if i % key_words == 0:
                # RotWord + SubWord + Rcon.
                temp = (
                    (sbox[(temp >> 16) & 0xFF] << 24)
                    | (sbox[(temp >> 8) & 0xFF] << 16)
                    | (sbox[temp & 0xFF] << 8)
                    | sbox[(temp >> 24) & 0xFF]
                ) ^ (_RCON[i // key_words - 1] << 24)
            elif key_words > 6 and i % key_words == 4:
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
            words.append(words[i - key_words] ^ temp)
        return words

    def _invert_key_schedule(self, enc_keys: List[int]) -> List[int]:
        """Key schedule for the equivalent inverse cipher.

        Round keys are applied in reverse order with InvMixColumns
        folded into every key except the first and last, so decryption
        rounds can use the combined ``Td`` tables directly.
        """
        rounds = self._rounds
        dec: List[int] = list(enc_keys[4 * rounds:4 * rounds + 4])
        for round_index in range(rounds - 1, 0, -1):
            base = 4 * round_index
            dec.extend(_inv_mix_word(enc_keys[base + c]) for c in range(4))
        dec.extend(enc_keys[0:4])
        return dec

    def _encrypt_words(self, s0: int, s1: int, s2: int, s3: int) -> Tuple[int, int, int, int]:
        """Encrypt one block held as four big-endian column words."""
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        k0, k1, k2, k3 = self._enc_first
        s0 ^= k0
        s1 ^= k1
        s2 ^= k2
        s3 ^= k3
        for k0, k1, k2, k3 in self._enc_mid:
            t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF] ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ k0
            t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF] ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ k1
            t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF] ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ k2
            t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF] ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ k3
            s0, s1, s2, s3 = t0, t1, t2, t3
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        sbox = _SBOX
        k0, k1, k2, k3 = self._enc_last
        t0 = (
            (sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
        ) ^ k0
        t1 = (
            (sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
        ) ^ k1
        t2 = (
            (sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
        ) ^ k2
        t3 = (
            (sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
        ) ^ k3
        return t0, t1, t2, t3

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        return _PACK4.pack(*self._encrypt_words(*_PACK4.unpack(block)))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block (equivalent inverse cipher)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        td0, td1, td2, td3 = _TD0, _TD1, _TD2, _TD3
        s0, s1, s2, s3 = _PACK4.unpack(block)
        k0, k1, k2, k3 = self._dec_first
        s0 ^= k0
        s1 ^= k1
        s2 ^= k2
        s3 ^= k3
        for k0, k1, k2, k3 in self._dec_mid:
            t0 = td0[s0 >> 24] ^ td1[(s3 >> 16) & 0xFF] ^ td2[(s2 >> 8) & 0xFF] ^ td3[s1 & 0xFF] ^ k0
            t1 = td0[s1 >> 24] ^ td1[(s0 >> 16) & 0xFF] ^ td2[(s3 >> 8) & 0xFF] ^ td3[s2 & 0xFF] ^ k1
            t2 = td0[s2 >> 24] ^ td1[(s1 >> 16) & 0xFF] ^ td2[(s0 >> 8) & 0xFF] ^ td3[s3 & 0xFF] ^ k2
            t3 = td0[s3 >> 24] ^ td1[(s2 >> 16) & 0xFF] ^ td2[(s1 >> 8) & 0xFF] ^ td3[s0 & 0xFF] ^ k3
            s0, s1, s2, s3 = t0, t1, t2, t3
        inv_sbox = _INV_SBOX
        k0, k1, k2, k3 = self._dec_last
        t0 = (
            (inv_sbox[s0 >> 24] << 24) | (inv_sbox[(s3 >> 16) & 0xFF] << 16)
            | (inv_sbox[(s2 >> 8) & 0xFF] << 8) | inv_sbox[s1 & 0xFF]
        ) ^ k0
        t1 = (
            (inv_sbox[s1 >> 24] << 24) | (inv_sbox[(s0 >> 16) & 0xFF] << 16)
            | (inv_sbox[(s3 >> 8) & 0xFF] << 8) | inv_sbox[s2 & 0xFF]
        ) ^ k1
        t2 = (
            (inv_sbox[s2 >> 24] << 24) | (inv_sbox[(s1 >> 16) & 0xFF] << 16)
            | (inv_sbox[(s0 >> 8) & 0xFF] << 8) | inv_sbox[s3 & 0xFF]
        ) ^ k2
        t3 = (
            (inv_sbox[s3 >> 24] << 24) | (inv_sbox[(s2 >> 16) & 0xFF] << 16)
            | (inv_sbox[(s1 >> 8) & 0xFF] << 8) | inv_sbox[s0 & 0xFF]
        ) ^ k3
        return _PACK4.pack(t0, t1, t2, t3)

    def encrypt_ctr_blocks(self, initial_counter: int, count: int) -> bytes:
        """Keystream for *count* counter blocks starting at *initial_counter*.

        Generates the big-endian counter words arithmetically (no
        per-block ``to_bytes``) and packs the whole keystream in one
        buffer — the batched hot path behind :mod:`repro.crypto.ctr`.
        """
        out = bytearray(count * BLOCK_SIZE)
        pack_into = _PACK4.pack_into
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        sbox = _SBOX
        f0, f1, f2, f3 = self._enc_first
        mid = self._enc_mid
        l0, l1, l2, l3 = self._enc_last
        mask128 = (1 << 128) - 1
        offset = 0
        # The round loop is inlined here (rather than calling
        # ``_encrypt_words`` per block) so tables and round keys are
        # bound to locals once per batch, not once per block.
        for block_index in range(count):
            counter = (initial_counter + block_index) & mask128
            s0 = ((counter >> 96) & 0xFFFFFFFF) ^ f0
            s1 = ((counter >> 64) & 0xFFFFFFFF) ^ f1
            s2 = ((counter >> 32) & 0xFFFFFFFF) ^ f2
            s3 = (counter & 0xFFFFFFFF) ^ f3
            for k0, k1, k2, k3 in mid:
                t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF] ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ k0
                t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF] ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ k1
                t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF] ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ k2
                t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF] ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ k3
                s0, s1, s2, s3 = t0, t1, t2, t3
            pack_into(
                out,
                offset,
                ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                 | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ l0,
                ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                 | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ l1,
                ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                 | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ l2,
                ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                 | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ l3,
            )
            offset += BLOCK_SIZE
        return bytes(out)
