"""Pure-Python AES block cipher (FIPS-197).

The paper's proxy enclaves use Intel SGX-SSL with AES-256 in CTR mode
for pseudonymization (constant IV, deterministic) and for protecting
recommendation lists (random IV).  This module provides the block
primitive; :mod:`repro.crypto.ctr` builds the CTR modes on top.

Supports 128-, 192- and 256-bit keys.  The implementation favours
clarity over speed; it is still fast enough to encrypt the short
identifiers and 20-entry recommendation lists the protocol exchanges.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# Round constants for key expansion.
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


def _build_sbox() -> bytes:
    """Construct the AES S-box from the finite-field definition."""
    # Multiplicative inverse table in GF(2^8) via exp/log tables with
    # generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 3: x * 3 = x ^ (x << 1)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            result ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = result
    return bytes(sbox)


_SBOX = _build_sbox()
_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))
_MUL9 = bytes(_gf_mul(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul(i, 14) for i in range(256))

# ShiftRows permutation of the 16-byte state laid out column-major
# (byte index = 4*col + row as in FIPS-197's one-dimensional layout).
_SHIFT_ROWS = (0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)
_INV_SHIFT_ROWS = (0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3)


class AES:
    """AES block cipher over 16-byte blocks.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes of key material.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self._key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self._key)

    @property
    def key_size(self) -> int:
        """Key length in bytes."""
        return len(self._key)

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size."""
        return self._rounds

    def _expand_key(self, key: bytes) -> List[bytes]:
        """Expand *key* into per-round 16-byte round keys."""
        key_words = len(key) // 4
        total_words = 4 * (self._rounds + 1)
        words = [key[4 * i:4 * i + 4] for i in range(key_words)]
        for i in range(key_words, total_words):
            temp = words[i - 1]
            if i % key_words == 0:
                # RotWord + SubWord + Rcon
                temp = bytes(
                    (
                        _SBOX[temp[1]] ^ _RCON[i // key_words - 1],
                        _SBOX[temp[2]],
                        _SBOX[temp[3]],
                        _SBOX[temp[0]],
                    )
                )
            elif key_words > 6 and i % key_words == 4:
                temp = bytes(_SBOX[b] for b in temp)
            prev = words[i - key_words]
            words.append(bytes(a ^ b for a, b in zip(prev, temp)))
        return [b"".join(words[4 * r:4 * r + 4]) for r in range(self._rounds + 1)]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(a ^ b for a, b in zip(block, self._round_keys[0]))
        for round_index in range(1, self._rounds):
            state = self._round(state, self._round_keys[round_index])
        # Final round: no MixColumns.
        sbox = _SBOX
        shifted = bytearray(sbox[state[_SHIFT_ROWS[i]]] for i in range(16))
        last_key = self._round_keys[self._rounds]
        return bytes(shifted[i] ^ last_key[i] for i in range(16))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(a ^ b for a, b in zip(block, self._round_keys[self._rounds]))
        inv_sbox = _INV_SBOX
        state = bytearray(inv_sbox[state[_INV_SHIFT_ROWS[i]]] for i in range(16))
        for round_index in range(self._rounds - 1, 0, -1):
            round_key = self._round_keys[round_index]
            state = bytearray(state[i] ^ round_key[i] for i in range(16))
            state = self._inv_mix_columns(state)
            state = bytearray(inv_sbox[state[_INV_SHIFT_ROWS[i]]] for i in range(16))
        first_key = self._round_keys[0]
        return bytes(state[i] ^ first_key[i] for i in range(16))

    @staticmethod
    def _round(state: Sequence[int], round_key: bytes) -> bytearray:
        """One full AES round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""
        sbox = _SBOX
        shifted = [sbox[state[_SHIFT_ROWS[i]]] for i in range(16)]
        mul2, mul3 = _MUL2, _MUL3
        output = bytearray(16)
        for col in range(4):
            base = 4 * col
            s0, s1, s2, s3 = shifted[base:base + 4]
            output[base] = mul2[s0] ^ mul3[s1] ^ s2 ^ s3 ^ round_key[base]
            output[base + 1] = s0 ^ mul2[s1] ^ mul3[s2] ^ s3 ^ round_key[base + 1]
            output[base + 2] = s0 ^ s1 ^ mul2[s2] ^ mul3[s3] ^ round_key[base + 2]
            output[base + 3] = mul3[s0] ^ s1 ^ s2 ^ mul2[s3] ^ round_key[base + 3]
        return output

    @staticmethod
    def _inv_mix_columns(state: Sequence[int]) -> bytearray:
        """InvMixColumns transformation."""
        mul9, mul11, mul13, mul14 = _MUL9, _MUL11, _MUL13, _MUL14
        output = bytearray(16)
        for col in range(4):
            base = 4 * col
            s0, s1, s2, s3 = state[base:base + 4]
            output[base] = mul14[s0] ^ mul11[s1] ^ mul13[s2] ^ mul9[s3]
            output[base + 1] = mul9[s0] ^ mul14[s1] ^ mul11[s2] ^ mul13[s3]
            output[base + 2] = mul13[s0] ^ mul9[s1] ^ mul14[s2] ^ mul11[s3]
            output[base + 3] = mul11[s0] ^ mul13[s1] ^ mul9[s2] ^ mul14[s3]
        return output
