"""AES-CTR stream modes used by the PProx protocol.

Two flavours, exactly as in the paper (§4.1, §5):

* :func:`det_encrypt` / :func:`det_decrypt` — deterministic encryption
  with a *constant* initialization vector.  Used to pseudonymize user
  and item identifiers so the LRS can recognise two encryptions of the
  same identifier as the same entity.
* :func:`rand_encrypt` / :func:`rand_decrypt` — randomized encryption
  with a fresh random IV prepended to the ciphertext.  Used for the
  recommendation list returned under the per-request temporary key
  ``k_u`` and for the public-key hybrid envelopes.
"""

from __future__ import annotations

import hmac
import os
from typing import Callable, Optional

from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = [
    "ctr_transform",
    "det_encrypt",
    "det_decrypt",
    "rand_encrypt",
    "rand_decrypt",
    "DETERMINISTIC_IV",
]

# The paper uses "a constant initialization vector" for deterministic
# encryption; any fixed value works as long as both directions agree.
DETERMINISTIC_IV = bytes(BLOCK_SIZE)

# Key schedules are expensive in pure Python; the proxy reuses a small
# number of permanent keys, so cache the expanded ciphers.
_CIPHER_CACHE: dict = {}
_CIPHER_CACHE_MAX = 256


def _cipher_for(key: bytes) -> AES:
    """Return a cached :class:`AES` instance for *key*."""
    cipher = _CIPHER_CACHE.get(key)
    if cipher is None:
        if len(_CIPHER_CACHE) >= _CIPHER_CACHE_MAX:
            _CIPHER_CACHE.clear()
        cipher = AES(key)
        _CIPHER_CACHE[key] = cipher
    return cipher


def ctr_transform(key: bytes, iv: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* with AES-CTR (the operation is symmetric).

    The 16-byte *iv* is treated as a big-endian counter block and
    incremented per 16-byte keystream block.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = _cipher_for(key)
    counter = int.from_bytes(iv, "big")
    out = bytearray()
    for offset in range(0, len(data), BLOCK_SIZE):
        keystream = cipher.encrypt_block(
            (counter & ((1 << 128) - 1)).to_bytes(BLOCK_SIZE, "big")
        )
        chunk = data[offset:offset + BLOCK_SIZE]
        out.extend(a ^ b for a, b in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def det_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Deterministically encrypt *plaintext* (constant IV, AES-CTR).

    Two calls with the same key and plaintext produce the same
    ciphertext — this is what makes pseudonymous identifiers stable
    across requests (paper §4.1).
    """
    return ctr_transform(key, DETERMINISTIC_IV, plaintext)


def det_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`det_encrypt`."""
    return ctr_transform(key, DETERMINISTIC_IV, ciphertext)


def rand_encrypt(key: bytes, plaintext: bytes, rng: Optional[Callable[[int], bytes]] = None) -> bytes:
    """Encrypt with a fresh random IV; returns ``iv || ciphertext``.

    *rng* may be supplied for deterministic tests; it must return *n*
    random bytes when called as ``rng(n)``.  Defaults to ``os.urandom``.
    """
    random_bytes = rng or os.urandom
    iv = random_bytes(BLOCK_SIZE)
    if len(iv) != BLOCK_SIZE:
        raise ValueError("rng returned an IV of the wrong size")
    return iv + ctr_transform(key, iv, plaintext)


def rand_decrypt(key: bytes, blob: bytes) -> bytes:
    """Invert :func:`rand_encrypt` on an ``iv || ciphertext`` blob."""
    if len(blob) < BLOCK_SIZE:
        raise ValueError("ciphertext too short to contain an IV")
    iv, ciphertext = blob[:BLOCK_SIZE], blob[BLOCK_SIZE:]
    return ctr_transform(key, iv, ciphertext)


def keyed_pseudonym(key: bytes, identifier: bytes, length: int = 16) -> bytes:
    """HMAC-SHA256 pseudonym: the *fast provider's* deterministic map.

    Unlike :func:`det_encrypt` this is not invertible, which is fine for
    pseudonymization-only flows (the LRS never needs the original user
    identifier back; item identifiers do need inversion, so the fast
    provider keeps a reverse table inside the enclave).
    """
    digest = hmac.new(key, identifier, "sha256").digest()
    return digest[:length]
