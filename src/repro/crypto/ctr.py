"""AES-CTR stream modes used by the PProx protocol.

Two flavours, exactly as in the paper (§4.1, §5):

* :func:`det_encrypt` / :func:`det_decrypt` — deterministic encryption
  with a *constant* initialization vector.  Used to pseudonymize user
  and item identifiers so the LRS can recognise two encryptions of the
  same identifier as the same entity.
* :func:`rand_encrypt` / :func:`rand_decrypt` — randomized encryption
  with a fresh random IV prepended to the ciphertext.  Used for the
  recommendation list returned under the per-request temporary key
  ``k_u`` and for the public-key hybrid envelopes.

Hot-path structure: keystream blocks are generated in one batched call
(:meth:`repro.crypto.aes.AES.encrypt_ctr_blocks`) and XORed against
the payload with a single whole-buffer integer XOR.  Because the
deterministic mode uses a constant IV, its keystream for a given key
is *fixed* — a per-key prefix is cached, so steady-state
pseudonymization of a ≤32-byte identifier is one slice + one XOR with
no AES calls at all.
"""

from __future__ import annotations

import hmac
import os
from typing import Callable, Optional

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.xor import xor_bytes

__all__ = [
    "ctr_transform",
    "det_encrypt",
    "det_decrypt",
    "rand_encrypt",
    "rand_decrypt",
    "keyed_pseudonym",
    "DETERMINISTIC_IV",
]

# The paper uses "a constant initialization vector" for deterministic
# encryption; any fixed value works as long as both directions agree.
DETERMINISTIC_IV = bytes(BLOCK_SIZE)

# Key schedules are expensive in pure Python; the proxy reuses a small
# number of permanent keys, so cache the expanded ciphers.
_CIPHER_CACHE: dict = {}
_CIPHER_CACHE_MAX = 256

# Constant-IV keystreams are fixed per key; cache a prefix long enough
# for identifiers and typical short payloads (32 blocks = 512 bytes).
_DET_KEYSTREAM_CACHE: dict = {}
_DET_KEYSTREAM_CACHE_MAX = 256
_DET_KEYSTREAM_PREFIX_BLOCKS = 32


def _evict_oldest(cache: dict, maxsize: int) -> None:
    """Drop the oldest entries until *cache* has room for one more.

    Dicts are insertion-ordered, so the first key is the oldest; a
    wholesale ``clear()`` here would re-expand all hot key schedules.
    """
    while len(cache) >= maxsize:
        del cache[next(iter(cache))]


def _cipher_for(key: bytes) -> AES:
    """Return a cached :class:`AES` instance for *key*."""
    cipher = _CIPHER_CACHE.get(key)
    if cipher is None:
        _evict_oldest(_CIPHER_CACHE, _CIPHER_CACHE_MAX)
        cipher = AES(key)
        _CIPHER_CACHE[key] = cipher
    return cipher


def _det_keystream(key: bytes, length: int) -> bytes:
    """Constant-IV keystream for *key*, at least *length* bytes long."""
    stream = _DET_KEYSTREAM_CACHE.get(key)
    if stream is None or len(stream) < length:
        blocks = max(
            _DET_KEYSTREAM_PREFIX_BLOCKS,
            (length + BLOCK_SIZE - 1) // BLOCK_SIZE,
        )
        initial = int.from_bytes(DETERMINISTIC_IV, "big")
        fresh = _cipher_for(key).encrypt_ctr_blocks(initial, blocks)
        if stream is None:
            _evict_oldest(_DET_KEYSTREAM_CACHE, _DET_KEYSTREAM_CACHE_MAX)
        _DET_KEYSTREAM_CACHE[key] = fresh
        return fresh
    return stream


def ctr_transform(key: bytes, iv: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* with AES-CTR (the operation is symmetric).

    The 16-byte *iv* is treated as a big-endian counter block and
    incremented per 16-byte keystream block.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not data:
        return b""
    cipher = _cipher_for(key)
    blocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
    keystream = cipher.encrypt_ctr_blocks(int.from_bytes(iv, "big"), blocks)
    return xor_bytes(data, keystream)


def det_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Deterministically encrypt *plaintext* (constant IV, AES-CTR).

    Two calls with the same key and plaintext produce the same
    ciphertext — this is what makes pseudonymous identifiers stable
    across requests (paper §4.1).  The constant-IV keystream is cached
    per key, so repeat calls cost one slice and one integer XOR.
    """
    if not plaintext:
        return b""
    return xor_bytes(plaintext, _det_keystream(key, len(plaintext)))


def det_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`det_encrypt`."""
    if not ciphertext:
        return b""
    return xor_bytes(ciphertext, _det_keystream(key, len(ciphertext)))


def rand_encrypt(key: bytes, plaintext: bytes, rng: Optional[Callable[[int], bytes]] = None) -> bytes:
    """Encrypt with a fresh random IV; returns ``iv || ciphertext``.

    *rng* may be supplied for deterministic tests; it must return *n*
    random bytes when called as ``rng(n)``.  Defaults to ``os.urandom``.
    """
    random_bytes = rng or os.urandom
    iv = random_bytes(BLOCK_SIZE)
    if len(iv) != BLOCK_SIZE:
        raise ValueError("rng returned an IV of the wrong size")
    return iv + ctr_transform(key, iv, plaintext)


def rand_decrypt(key: bytes, blob: bytes) -> bytes:
    """Invert :func:`rand_encrypt` on an ``iv || ciphertext`` blob."""
    if len(blob) < BLOCK_SIZE:
        raise ValueError("ciphertext too short to contain an IV")
    iv, ciphertext = blob[:BLOCK_SIZE], blob[BLOCK_SIZE:]
    return ctr_transform(key, iv, ciphertext)


def keyed_pseudonym(key: bytes, identifier: bytes, length: int = 16) -> bytes:
    """HMAC-SHA256 pseudonym: the *fast provider's* deterministic map.

    Unlike :func:`det_encrypt` this is not invertible, which is fine for
    pseudonymization-only flows (the LRS never needs the original user
    identifier back; item identifiers do need inversion, so the fast
    provider keeps a reverse table inside the enclave).
    """
    digest = hmac.new(key, identifier, "sha256").digest()
    return digest[:length]
