"""PProx reproduction: efficient privacy for recommendation-as-a-service.

A from-scratch Python implementation and evaluation harness for the
Middleware '21 paper by Rosinosky et al.  The package is organised as
the paper's system is:

* :mod:`repro.crypto` — AES-CTR / RSA-OAEP substrate (SGX-SSL stand-in)
* :mod:`repro.sgx` — simulated enclaves, attestation, side channels
* :mod:`repro.simnet` — deterministic discrete-event cluster simulator
* :mod:`repro.rest` — the LRS REST message model
* :mod:`repro.lrs` — Universal-Recommender-style CCO engine + Harness
* :mod:`repro.proxy` — the two-layer pseudonymizing proxy (the paper's
  contribution)
* :mod:`repro.client` — the thin user-side library
* :mod:`repro.privacy` — adversary, unlinkability closure, attacks
* :mod:`repro.cluster` — Table 2/3 deployments, elastic scaling
* :mod:`repro.workload` — MovieLens-shaped traces and load injection
* :mod:`repro.experiments` — reproduction of every figure and table
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
