"""Re-encryption of LRS state after a key rotation (footnote 1).

When a layer's keys rotate, the LRS database still holds pseudonyms
minted under the retired keys.  The paper lists three responses:

1. drop the database and restart with new secrets
   (:meth:`repro.proxy.service.PProxService.breach_response`);
2. download the LRS state, re-encrypt it locally, re-upload it, and
   provision fresh enclaves — implemented here;
3. an LRS-specific proxy re-encryption scheme (out of scope).

Option 2 preserves the accumulated interaction history (and hence
model quality) at the cost of a pass over the database.  The
re-encryption is performed by the RaaS *client application*, which is
the party that generated both the old and the new keys.

Two entry points share the translation machinery:

* :func:`reencrypt_store` — the original stop-the-world pass, kept for
  breach response (the old keys are already burned; nothing is racing
  the rewrite);
* :class:`OnlineRekeyer` — the resumable, batched pass the live
  rotation drill (:mod:`repro.proxy.epochs`) runs in the background
  while traffic flows.  Its target is the store prefix present at
  construction time: rows inserted later were pseudonymized forward
  under the *new* epoch by the proxy layers, so the prefix is a fixed
  cut-over barrier, not a moving one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.crypto.envelope import EnvelopeCodec
from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider
from repro.lrs.store import EventStore

__all__ = ["RekeyReport", "OnlineRekeyer", "reencrypt_store"]


@dataclass(frozen=True)
class RekeyReport:
    """Summary of one re-encryption pass.

    The translate-cache counters expose the pass's crypto cost: each
    miss is one depseudonymize + one pseudonymize provider call, each
    hit is a dictionary lookup.  ``hits + misses == events_processed``.
    """

    events_processed: int
    users_rekeyed: int
    items_rekeyed: int
    layer: str
    translate_cache_hits: int = 0
    translate_cache_misses: int = 0


@dataclass
class OnlineRekeyer:
    """Resumable, batched re-pseudonymization of one layer's column.

    Construction snapshots ``target = len(store)``; :meth:`run_batch`
    rewrites up to *limit* rows in place and returns how many it
    processed.  The cursor survives between calls, so a coordinator
    can interleave batches with live traffic — or stop entirely (a
    crash, an overload pause) and resume where it stood.  Rows are
    rewritten through :meth:`repro.lrs.store.EventStore.rewrite`, which
    keeps the user/item indexes consistent mid-pass: gets served
    between batches see a store that is simply part-old, part-new, and
    the dual-epoch response path resolves both.
    """

    store: EventStore
    provider: CryptoProvider
    old_keys: LayerKeys
    new_keys: LayerKeys
    layer: str = "IA"
    cursor: int = 0
    target: int = 0
    users_rekeyed: int = 0
    items_rekeyed: int = 0
    translate_cache_hits: int = 0
    translate_cache_misses: int = 0
    batches_run: int = 0
    _translated: Dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.layer not in ("UA", "IA"):
            raise ValueError(f"unknown layer {self.layer!r}")
        self.target = len(self.store)

    @property
    def done(self) -> bool:
        """True once the snapshot prefix is fully re-encrypted."""
        return self.cursor >= self.target

    @property
    def progress_ratio(self) -> float:
        """Fraction of the snapshot prefix already rewritten."""
        if self.target == 0:
            return 1.0
        return min(1.0, self.cursor / self.target)

    def _translate(self, value: str) -> str:
        cached = self._translated.get(value)
        if cached is not None:
            self.translate_cache_hits += 1
            return cached
        self.translate_cache_misses += 1
        plain = self.provider.depseudonymize(
            self.old_keys.symmetric_key, EnvelopeCodec.wire_blob(value)
        )
        fresh = EnvelopeCodec.wire_text(
            self.provider.pseudonymize(self.new_keys.symmetric_key, plain)
        )
        self._translated[value] = fresh
        return fresh

    def run_batch(self, limit: int = 64) -> int:
        """Rewrite up to *limit* rows; returns the number processed."""
        processed = 0
        while processed < limit and self.cursor < self.target:
            event = self.store.events[self.cursor]
            if self.layer == "UA":
                self.store.rewrite(event.sequence, user=self._translate(event.user))
                self.users_rekeyed += 1
            else:
                self.store.rewrite(event.sequence, item=self._translate(event.item))
                self.items_rekeyed += 1
            self.cursor += 1
            processed += 1
        if processed:
            self.batches_run += 1
        return processed

    def report(self) -> RekeyReport:
        """Snapshot of the pass so far (final when :attr:`done`)."""
        return RekeyReport(
            events_processed=self.cursor,
            users_rekeyed=self.users_rekeyed,
            items_rekeyed=self.items_rekeyed,
            layer=self.layer,
            translate_cache_hits=self.translate_cache_hits,
            translate_cache_misses=self.translate_cache_misses,
        )


def reencrypt_store(
    store: EventStore,
    provider: CryptoProvider,
    old_keys: LayerKeys,
    new_keys: LayerKeys,
    layer: str,
) -> RekeyReport:
    """Re-pseudonymize one layer's identifiers in *store*, in place.

    *layer* selects which column rotates: ``"UA"`` re-keys user
    pseudonyms (kUA), ``"IA"`` re-keys item pseudonyms (kIA).  The
    other column is untouched — its keys did not leak.  Runs the
    :class:`OnlineRekeyer` to completion in one call.
    """
    rekeyer = OnlineRekeyer(
        store=store,
        provider=provider,
        old_keys=old_keys,
        new_keys=new_keys,
        layer=layer,
    )
    while not rekeyer.done:
        rekeyer.run_batch(1024)
    return rekeyer.report()
