"""Offline re-encryption of LRS state after a breach (footnote 1).

When an enclave is compromised and its layer's keys rotate, the LRS
database still holds pseudonyms minted under the retired keys.  The
paper lists three responses:

1. drop the database and restart with new secrets
   (:meth:`repro.proxy.service.PProxService.breach_response`);
2. download the LRS state, re-encrypt it locally, re-upload it, and
   provision fresh enclaves — implemented here;
3. an LRS-specific proxy re-encryption scheme (out of scope).

Option 2 preserves the accumulated interaction history (and hence
model quality) at the cost of an offline pass over the database.  The
re-encryption is performed by the RaaS *client application*, which is
the party that generated both the old and the new keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider
from repro.lrs.store import EventStore

__all__ = ["RekeyReport", "reencrypt_store"]


@dataclass(frozen=True)
class RekeyReport:
    """Summary of one offline re-encryption pass."""

    events_processed: int
    users_rekeyed: int
    items_rekeyed: int
    layer: str


def reencrypt_store(
    store: EventStore,
    provider: CryptoProvider,
    old_keys: LayerKeys,
    new_keys: LayerKeys,
    layer: str,
) -> RekeyReport:
    """Re-pseudonymize one layer's identifiers in *store*, in place.

    *layer* selects which column rotates: ``"UA"`` re-keys user
    pseudonyms (kUA), ``"IA"`` re-keys item pseudonyms (kIA).  The
    other column is untouched — its keys did not leak.
    """
    if layer not in ("UA", "IA"):
        raise ValueError(f"unknown layer {layer!r}")
    from repro.crypto.envelope import b64, unb64

    translated: dict = {}

    def translate(value: str) -> str:
        cached = translated.get(value)
        if cached is None:
            plain = provider.depseudonymize(old_keys.symmetric_key, unb64(value))
            cached = b64(provider.pseudonymize(new_keys.symmetric_key, plain))
            translated[value] = cached
        return cached

    events = store.dump()
    store.clear()
    users_rekeyed = 0
    items_rekeyed = 0
    for event in events:
        user, item = event.user, event.item
        if layer == "UA":
            user = translate(user)
            users_rekeyed += 1
        else:
            item = translate(item)
            items_rekeyed += 1
        store.insert(user, item, event.payload)
    return RekeyReport(
        events_processed=len(events),
        users_rekeyed=users_rekeyed,
        items_rekeyed=items_rekeyed,
        layer=layer,
    )
