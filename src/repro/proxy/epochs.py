"""Epoch-based live key rotation (online re-key without downtime).

The breach response of footnote 1 — rotate a layer's keys and
re-encrypt the LRS — exists in this repo as a stop-the-world pass
(:func:`repro.proxy.rekey.reencrypt_store`).  A production RaaS fleet
cannot stop: this module rotates keys while traffic flows, without
ever aborting a request and without ever letting the effective
anonymity set drop below ``S*I`` mid-rotation.

The drill, in order:

1. **announce** — the coordinator generates the next :class:`KeyEpoch`
   and flips it active in every alive enclave of the rotating layer.
   The base sealed slots always hold the *active* keys, so all forward
   pseudonymization switches to the new epoch at the announce instant;
   the outgoing generation stays sealed under suffixed slots
   (``skUA@e0``) described by an :class:`EpochWindow`.
2. **dual-epoch window** — the layers trial-decrypt inbound traffic
   under the active key first, then the previous one, and *always*
   re-encrypt forward under the active epoch.  In-flight requests
   sealed by clients against the old public key keep completing.
3. **client discovery** — the user-side library re-reads the service's
   key material (and bumps its epoch counter) on every retryable
   error and on cache expiry, so stale clients converge without a
   control channel (extending the re-encode-on-retry path).
4. **re-encryption** — an :class:`~repro.proxy.rekey.OnlineRekeyer`
   translates the pre-announce LRS prefix in resumable batches; rows
   inserted after the announce are new-epoch by construction (the
   layers always encrypt forward under the active key), so the prefix
   is a fixed, shrinking target and the cut-over barrier is simply
   ``rekeyer.done``.
5. **retire** — once the re-encrypted store has been cut over and no
   shuffle batch has used the previous epoch for ``retire_grace``
   seconds (longer than the shuffle timeout, so every batch buffered
   under the old epoch has flushed), the old keys are wiped from all
   enclaves.

Privacy invariants, enforced structurally:

* the epoch id travels the wire only as a fixed-width tag on the
  client->UA hop and is stripped by the UA **before** the request
  enters a shuffle buffer — shuffle batches are provably tag-free, so
  an adversary cannot partition a batch by epoch;
* rotation **pauses — never aborts requests** — whenever proceeding
  could thin the anonymity set: a crashed rotating instance, a shuffle
  flush below the min-fill floor, or an overload signal all hold the
  drill where it stands until the condition clears.

:class:`EpochWindow` and the sealed-slot helpers are defined in
:mod:`repro.sgx.provisioning` (the proxy package depends on sgx, not
the other way around) and re-exported here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.crypto.keys import KeyFactory, LayerKeys
from repro.rest.messages import Request
from repro.sgx.enclave import Enclave
from repro.sgx.provisioning import EPOCH_WINDOW_SLOT, EpochWindow, epoch_slot
from repro.simnet.clock import EventLoop

__all__ = [
    "EPOCH_FIELD",
    "EPOCH_WIDTH",
    "MAX_EPOCH",
    "encode_epoch",
    "decode_epoch",
    "stamp_epoch",
    "strip_epoch",
    "KeyEpoch",
    "EpochWindow",
    "epoch_slot",
    "EPOCH_WINDOW_SLOT",
    "epoch_window_of",
    "window_candidates",
    "ROTATION_STATES",
    "RotationCoordinator",
]

#: Field name the epoch id travels under (top level, never sealed —
#: the UA must strip it before the enclave transition, exactly like
#: the deadline budget).
EPOCH_FIELD = "kepoch"

#: Every encoded epoch id is exactly this many characters, so the tag
#: preserves the §4.3 constant-size property among epoch-aware clients.
EPOCH_WIDTH = 4

#: Largest encodable epoch id; larger values are clamped.
MAX_EPOCH = 9999


def encode_epoch(epoch_id: int) -> str:
    """Fixed-width encoding of an epoch id (``0003``)."""
    clamped = min(max(int(epoch_id), 0), MAX_EPOCH)
    return format(clamped, f"0{EPOCH_WIDTH}d")


def decode_epoch(message: Union[Request, dict]) -> Optional[int]:
    """Epoch id carried by *message*, or ``None`` when absent/garbled."""
    fields = message if isinstance(message, dict) else message.fields
    encoded = fields.get(EPOCH_FIELD)
    if encoded is None:
        return None
    try:
        return int(encoded)
    except (TypeError, ValueError):
        return None


def stamp_epoch(request: Request, epoch_id: Optional[int]) -> Request:
    """Copy of *request* tagged with *epoch_id* (unchanged for None)."""
    if epoch_id is None:
        return request
    return request.with_fields(**{EPOCH_FIELD: encode_epoch(epoch_id)})


def strip_epoch(request: Request) -> Tuple[Request, Optional[int]]:
    """Remove the epoch tag from *request*; returns (bare, epoch id).

    Called by the UA at its front door, *before* the request can enter
    a shuffle buffer: whatever sits in a batch carries no epoch marker
    the adversary could use to partition the batch.
    """
    epoch_id = decode_epoch(request)
    if EPOCH_FIELD not in request.fields:
        return request, epoch_id
    return request.with_fields(**{EPOCH_FIELD: None}), epoch_id


@dataclass(frozen=True)
class KeyEpoch:
    """One generation of a layer's key material.

    ``fingerprint`` is an identity-free digest of the public modulus
    (see :attr:`repro.crypto.keys.LayerKeys.fingerprint`) used in
    operator telemetry to correlate announcements with provisioned
    enclaves without ever serializing key material.
    """

    layer: str
    epoch_id: int
    fingerprint: str = ""


def epoch_window_of(enclave: Enclave) -> Optional[EpochWindow]:
    """The dual-epoch window sealed into *enclave*, if one is open.

    The presence check is host-side (the slot name is not a secret),
    so deployments that never rotate pay zero extra ecalls; reading
    the descriptor itself is an ecall like any sealed access.
    """
    if not enclave.sealed.contains(EPOCH_WINDOW_SLOT):
        return None
    return enclave.secret(EPOCH_WINDOW_SLOT)


def window_candidates(
    enclave: Enclave, active: LayerKeys, window: EpochWindow
) -> Iterator[Tuple[LayerKeys, bool]]:
    """Trial-decryption candidates, active epoch first.

    Each candidate pairs a decryption private key with the **active**
    symmetric key: whichever epoch a message was sealed under, the
    layer always pseudonymizes forward under the new one — old-epoch
    pseudonyms never re-enter the system after the announce.
    """
    yield active, False
    prev_sk_slot, _ = window.secret_slots()
    yield (
        LayerKeys(
            private_key=enclave.secret(prev_sk_slot),
            symmetric_key=active.symmetric_key,
        ),
        True,
    )


#: Rotation drill states, in drill order.  ``paused`` is orthogonal
#: (the drill resumes where it stood); :attr:`RotationCoordinator.
#: state_code` reports the paused index while the pause lasts so the
#: ``pprox_rotation_state`` gauge shows the stall.
ROTATION_STATES = ("idle", "announced", "reencrypting", "draining", "retired", "paused")


@dataclass
class RotationCoordinator:
    """Drives one layer's live rotation drill tick by tick.

    The coordinator is deliberately stateless about in-flight traffic:
    it reads the same signals an operator would (instance liveness,
    shuffle flush sizes, ingress sojourn) and only ever does three
    things — re-provision a stale enclave, run one re-encryption
    batch, or wait.  Crashes of the rotating instance, partitions that
    swallow an announcement, and overload all reduce to "pause until
    the coverage/floor checks pass again", which is what makes the
    drill restart-safe.
    """

    loop: EventLoop
    #: The deployed :class:`~repro.proxy.service.PProxService` (duck-
    #: typed to keep this module import-light).
    service: Any
    layer: str
    #: The LRS :class:`~repro.lrs.store.EventStore` to re-encrypt.
    store: Any
    provider: Any
    factory: KeyFactory
    #: Cut-over barrier: called once, when the background re-encryption
    #: completes (e.g. retrain the recommender over the rekeyed store).
    on_cutover: Optional[Callable[[], None]] = None
    batch_size: int = 64
    tick_interval: float = 0.1
    #: Seconds without any previous-epoch decrypt before retirement;
    #: keep this above the shuffle timeout so every batch buffered
    #: under the old epoch has flushed and been answered.
    retire_grace: float = 0.5
    #: Anonymity floor per shuffle flush; ``None`` uses the configured
    #: shuffle size S.  Any alive rotating-layer buffer whose last
    #: flush fell below the floor pauses the drill.
    min_fill: Optional[int] = None
    #: Rotation yields to overload: pause while any rotating-layer
    #: instance's ingress sojourn exceeds this (seconds).
    overload_sojourn_threshold: float = 0.25
    telemetry: Any = None

    state: str = "idle"
    paused: bool = False
    pause_reason: Optional[str] = None
    ticks: int = 0
    pauses: int = 0
    pause_reasons: Dict[str, int] = field(default_factory=dict)
    #: Alive enclaves found holding a stale key generation and healed
    #: by an idempotent re-announce (partition / missed-announce path).
    reprovisions: int = 0
    old_epoch: Optional[int] = None
    new_epoch: Optional[int] = None
    window_opened_at: Optional[float] = None
    window_closed_at: Optional[float] = None
    rekeyer: Any = None
    _started: bool = False
    _stopped: bool = False

    # -- lifecycle ------------------------------------------------------

    def start(self, announce_at: float = 0.0) -> None:
        """Schedule the drill: announce at *announce_at*, then tick."""
        if self._started:
            raise RuntimeError("rotation drill already started")
        self._started = True
        self.loop.schedule(max(0.0, announce_at - self.loop.now), self._announce)

    def stop(self) -> None:
        """Halt the drill where it stands: no further ticks fire.

        An operator action for post-mortems — the dual-epoch window,
        if open, stays open (stopping is not a retirement), and
        traffic keeps being served under whatever epochs are live.
        """
        self._stopped = True

    @property
    def state_code(self) -> int:
        """Index into :data:`ROTATION_STATES` (gauge-friendly)."""
        if self.paused:
            return ROTATION_STATES.index("paused")
        return ROTATION_STATES.index(self.state)

    @property
    def completed(self) -> bool:
        """True once the old epoch has been retired."""
        return self.state == "retired"

    @property
    def progress_ratio(self) -> float:
        """Fraction of the pre-announce LRS prefix re-encrypted."""
        if self.rekeyer is None:
            return 0.0 if self.state == "idle" else 1.0
        return self.rekeyer.progress_ratio

    @property
    def dual_window_seconds(self) -> float:
        """How long the dual-epoch acceptance window has been open."""
        if self.window_opened_at is None:
            return 0.0
        closed = (
            self.window_closed_at
            if self.window_closed_at is not None
            else self.loop.now
        )
        return closed - self.window_opened_at

    def guard(self, layer: str) -> bool:
        """Scaling guard: True while *layer* is mid-rotation (the
        autoscaler must not retire instances whose enclaves hold the
        only in-flight copies of previous-epoch secrets)."""
        return layer == self.layer and self.state not in ("idle", "retired")

    # -- drill ----------------------------------------------------------

    def _instances(self) -> list:
        return list(self.service.layer_instances(self.layer))

    def _announce(self) -> None:
        if self._stopped:
            return
        new_keys = self.factory.layer_keys()
        self.old_epoch, self.new_epoch = self.service.announce_epoch(
            self.layer, new_keys
        )
        self.window_opened_at = self.loop.now
        # Local import: repro.proxy.rekey -> crypto/lrs only, but kept
        # out of module scope so importing epochs never forces the
        # re-encryption machinery into memory for tag-only users.
        from repro.proxy.rekey import OnlineRekeyer

        held = self.service.provisioner.previous_keys[self.layer]
        self.rekeyer = OnlineRekeyer(
            store=self.store,
            provider=self.provider,
            old_keys=held[1],
            new_keys=self.service.provisioner.layer_keys[self.layer],
            layer=self.layer,
        )
        self.state = "announced"
        self._emit(
            {
                "event": "epoch_announced",
                "layer": self.layer,
                "old_epoch": self.old_epoch,
                "new_epoch": self.new_epoch,
                "fingerprint": new_keys.fingerprint,
                "rekey_target": self.rekeyer.target,
            }
        )
        self.loop.schedule(self.tick_interval, self._tick)

    def _tick(self) -> None:
        if self._stopped or self.state in ("idle", "retired"):
            return
        self.ticks += 1
        self._ensure_coverage()
        reason = self._pause_reason()
        if reason is not None:
            if not self.paused:
                self.paused = True
                self.pauses += 1
                self.pause_reasons[reason] = self.pause_reasons.get(reason, 0) + 1
                self._emit(
                    {"event": "rotation_paused", "layer": self.layer, "reason": reason}
                )
            self.pause_reason = reason
        else:
            if self.paused:
                self.paused = False
                self.pause_reason = None
                self._emit({"event": "rotation_resumed", "layer": self.layer})
            self._advance()
        if self.state != "retired":
            self.loop.schedule(self.tick_interval, self._tick)

    def _ensure_coverage(self) -> None:
        """Idempotent re-announce: heal any alive enclave that missed
        the epoch flip (restarted from an old image, or partitioned
        away during the announcement)."""
        provisioner = self.service.provisioner
        for instance in self._instances():
            if not instance.alive:
                continue
            if provisioner.verify_generation(instance.enclave):
                continue
            provisioner.reprovision(self.layer, instance.enclave)
            self.reprovisions += 1
            self._emit(
                {
                    "event": "epoch_reannounced",
                    "layer": self.layer,
                    "instance": instance.name,
                }
            )

    def _pause_reason(self) -> Optional[str]:
        instances = self._instances()
        if any(not instance.alive for instance in instances):
            # The rotating layer is degraded; advancing the drill (and
            # eventually wiping old keys) while an instance is down
            # risks both availability and the anonymity floor once it
            # returns.  Wait for the supervisor/monitor to recover it.
            return "instance_down"
        floor = self.min_fill
        if floor is None:
            floor = self.service.config.shuffle_size
        if floor > 1:
            for instance in instances:
                buffer = getattr(instance, "request_buffer", None)
                if buffer is None:
                    buffer = getattr(instance, "response_buffer", None)
                if buffer is None:
                    continue
                last = buffer.last_flush_size
                if last is not None and last < floor:
                    # A flush (or crash-drain) below S: proceeding
                    # would certify a rotation over a thinned batch.
                    return "anonymity_floor"
        for instance in instances:
            signal_fn = getattr(instance, "overload_signal", None)
            if signal_fn is None:
                continue
            if signal_fn().queue_sojourn > self.overload_sojourn_threshold:
                # Read the raw signal rather than consulting the
                # admission controller: admit() mutates shed counters.
                return "overload"
        return None

    def _advance(self) -> None:
        if self.state == "announced":
            self.state = "reencrypting"
            return
        if self.state == "reencrypting":
            self.rekeyer.run_batch(self.batch_size)
            if self.rekeyer.done:
                if self.on_cutover is not None:
                    self.on_cutover()
                self.state = "draining"
                self._emit(
                    {
                        "event": "rekey_cutover",
                        "layer": self.layer,
                        "events_processed": self.rekeyer.cursor,
                        "batches": self.rekeyer.batches_run,
                    }
                )
            return
        if self.state == "draining" and self._drained():
            retired = self.service.retire_epoch(self.layer)
            self.window_closed_at = self.loop.now
            self.state = "retired"
            self._emit(
                {
                    "event": "epoch_retired",
                    "layer": self.layer,
                    "epoch": retired,
                    "window_seconds": self.dual_window_seconds,
                    "reprovisions": self.reprovisions,
                    "pauses": self.pauses,
                }
            )

    def _drained(self) -> bool:
        """No shuffle batch still holds old-epoch work: nothing has
        needed the previous keys for *retire_grace* seconds."""
        last_use = self.window_opened_at if self.window_opened_at is not None else 0.0
        for instance in self._instances():
            used_at = getattr(instance, "last_previous_epoch_use", None)
            if used_at is not None:
                last_use = max(last_use, used_at)
        return self.loop.now - last_use >= self.retire_grace

    def _emit(self, payload: Dict[str, Any]) -> None:
        if self.telemetry is not None:
            self.telemetry.event_log.emit("rotation", "operator", payload)
