"""The PProx privacy-preserving proxy service (the paper's contribution).

Two pseudonymizing layers in separate SGX enclaves — the
client-facing :class:`~repro.proxy.layers.UserAnonymizer` and the
LRS-facing :class:`~repro.proxy.layers.ItemAnonymizer` — plus the
request/response :class:`~repro.proxy.shuffler.ShuffleBuffer`, the
protocol transformations of §4.2, the calibrated cost model, and the
service assembly with attestation-gated key provisioning.
"""

from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.proxy.layers import ItemAnonymizer, ProxyRuntime, UserAnonymizer
from repro.proxy.protocol import (
    CallKeys,
    ClientMaterial,
    IaRequestContext,
    client_decode_response,
    client_encode_get,
    client_encode_post,
    ia_transform_request,
    ia_transform_response,
    ua_transform_request,
    ua_wrap_response,
)
from repro.proxy.service import IA_CODE_IDENTITY, UA_CODE_IDENTITY, PProxService, build_pprox
from repro.proxy.rekey import OnlineRekeyer, RekeyReport, reencrypt_store
from repro.proxy.epochs import (
    EPOCH_FIELD,
    ROTATION_STATES,
    EpochWindow,
    KeyEpoch,
    RotationCoordinator,
    decode_epoch,
    encode_epoch,
    epoch_window_of,
    stamp_epoch,
    strip_epoch,
    window_candidates,
)
from repro.proxy.shuffler import ShuffleBuffer

__all__ = [
    "PProxConfig",
    "ProxyCostModel",
    "DEFAULT_COSTS",
    "UserAnonymizer",
    "ItemAnonymizer",
    "ProxyRuntime",
    "ShuffleBuffer",
    "RekeyReport",
    "OnlineRekeyer",
    "reencrypt_store",
    "EPOCH_FIELD",
    "ROTATION_STATES",
    "EpochWindow",
    "KeyEpoch",
    "RotationCoordinator",
    "decode_epoch",
    "encode_epoch",
    "epoch_window_of",
    "stamp_epoch",
    "strip_epoch",
    "window_candidates",
    "CallKeys",
    "ClientMaterial",
    "IaRequestContext",
    "ua_wrap_response",
    "client_encode_post",
    "client_encode_get",
    "client_decode_response",
    "ua_transform_request",
    "ia_transform_request",
    "ia_transform_response",
    "PProxService",
    "build_pprox",
    "UA_CODE_IDENTITY",
    "IA_CODE_IDENTITY",
]
