"""The UA and IA proxy layer instances (data plane).

Each instance models one proxy enclave and its host node, as
described in §5: an event-driven server (outside the enclave) feeding
a pool of data-processing workers (inside the enclave) through a
concurrent queue, a routing table ``T`` for pending requests, and a
shuffle buffer for the direction that instance randomizes (UA:
requests, IA: responses).

Processing is charged to the instance's 2-core
:class:`repro.simnet.node.SimNode` using the calibrated
:class:`repro.proxy.costs.ProxyCostModel`; transformations perform the
*actual* cryptographic rewrites from :mod:`repro.proxy.protocol`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.crypto.envelope import EnvelopeCodec, decode_identifier
from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider
from repro.overload.admission import AdmissionController, OverloadSignal
from repro.overload.deadline import charge, decode_deadline, stamp_deadline
from repro.overload.policy import OverloadPolicy
from repro.overload.shedding import (
    STAGE_ADMISSION,
    STAGE_DEADLINE,
    STAGE_QUEUE,
    STAGE_UPSTREAM,
    uniform_reject,
)
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.proxy.costs import ProxyCostModel
from repro.proxy.epochs import (
    EPOCH_FIELD,
    epoch_window_of,
    strip_epoch,
    window_candidates,
)
from repro.obs.tracewire import TRACE_FIELD, strip_trace
from repro.proxy.shuffler import ShuffleBuffer
from repro.rest.codec import BatchEnvelope, WireCodec, ship
from repro.rest.messages import Request, Response, Verb
from repro.rest.routing import RoutingTable
from repro.sgx.enclave import Enclave
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import BalancerError, LoadBalancer
from repro.simnet.network import Network
from repro.simnet.node import SimNode
from repro.simnet.queueing import ConcurrentQueue
from repro.telemetry.types import TelemetryLike

__all__ = [
    "UserAnonymizer",
    "ItemAnonymizer",
    "ProxyRuntime",
    "DEFAULT_TENANT",
    "RETRYABLE_STATUS",
    "transform_error_response",
]

ReplyFn = Callable[[Response], None]

#: Status returned when a proxy layer cannot transform a message (e.g.
#: its keys were rotated while the request was in flight).  Clients
#: treat it like a timeout: back off and retry under a fresh id.
RETRYABLE_STATUS = 503


def transform_error_response(request: Request, exc: Exception) -> Response:
    """A retryable error reply for a failed cryptographic transform.

    The reply is the canonical uniform reject: not even the exception
    *type* crosses the wire anymore (exception messages can quote the
    payload being transformed, and type names correlate with layer
    state — a shed, a stale key and a breaker trip must all look the
    same to the other layer and to the wire adversary).  The cause
    survives only in the instance's local ``transform_errors`` counter.
    """
    del exc  # cause is deliberately not serialized
    return uniform_reject(request.request_id)

#: Tenant label used by single-application deployments.
DEFAULT_TENANT = "default"


def _tenant_of(request: Request) -> str:
    """The (public) application identity a request belongs to."""
    tenant = request.fields.get("tenant")
    return tenant if isinstance(tenant, str) else DEFAULT_TENANT


@dataclass
class ProxyRuntime:
    """Shared wiring every proxy instance needs."""

    loop: EventLoop
    network: Network
    rng: random.Random
    provider: CryptoProvider
    config: PProxConfig
    costs: ProxyCostModel
    #: Optional :class:`repro.telemetry.Telemetry` hub.  When absent,
    #: the data plane runs with zero instrumentation overhead.
    telemetry: Optional[TelemetryLike] = None
    #: Optional overload-protection knobs.  ``None`` (the default)
    #: means the layers run exactly the pre-overload data plane: no
    #: ingress queues, no admission control, no deadline enforcement.
    overload: Optional[OverloadPolicy] = None
    #: Optional :class:`repro.obs.causal.CausalTracer`.  The UA front
    #: door notifies it when a trace id is severed; batch spans are
    #: wired separately (:func:`repro.obs.causal.instrument_causal`).
    causal: Optional[Any] = None
    #: Optional :class:`repro.rest.codec.WireCodec`.  ``None`` (the
    #: default) is the seed data plane: messages cross the simulated
    #: network as Python objects, byte-identical to pre-codec builds.
    #: With a codec armed, every protected hop carries encoded frames,
    #: and a batch-capable codec switches the UA to one sealed
    #: envelope per shuffle flush.
    codec: Optional[WireCodec] = None
    #: Current IA-layer public material (set by ``build_service``; kept
    #: a callable so it tracks live key rotation).  Needed by the UA in
    #: batch-envelope mode to seal the flushed batch under ``pkIA``.
    ia_public: Optional[Callable[[], Any]] = None

    def field_blob(self, value: Any) -> bytes:
        """Materialize a wire field into ciphertext bytes."""
        if self.codec is not None:
            return self.codec.blob_value(value)
        return EnvelopeCodec.wire_blob(value)


class _BatchCollector:
    """Accumulates one shuffle flush's transformed requests.

    Each flushed entry contributes exactly once — a transformed
    request via :meth:`add`, or a :meth:`skip` when its transform
    failed or its instance generation went stale — and the batch seals
    when the last contribution lands.  ``sealed`` guards against the
    flush firing twice.
    """

    __slots__ = ("expected", "requests", "sealed")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.requests: list = []
        self.sealed = False

    def add(self, request: Request) -> None:
        self.requests.append(request)

    def skip(self) -> None:
        self.expected -= 1

    @property
    def complete(self) -> bool:
        return not self.sealed and len(self.requests) >= self.expected


def _layer_keys(enclave: Enclave, sk_slot: str, k_slot: str) -> LayerKeys:
    """Reconstruct the layer's key material from sealed enclave slots."""
    return LayerKeys(
        private_key=enclave.secret(sk_slot),
        symmetric_key=enclave.secret(k_slot),
    )


def _sgx_attrs(runtime: ProxyRuntime, enclave: Enclave, pending: int) -> dict:
    """Enclave-boundary cost attributes for the currently open span."""
    sgx = runtime.costs.sgx
    if not (runtime.config.sgx and sgx.enabled):
        return {}
    return {
        "sgx_overhead_seconds": sgx.request_overhead(pending, enclave.performance_penalty),
        "epc_paging": pending > sgx.epc_entries,
    }


@dataclass
class UserAnonymizer:
    """One UA-layer proxy instance (first layer, client-facing)."""

    name: str
    runtime: ProxyRuntime
    enclave: Enclave
    ia_balancer: LoadBalancer
    node: SimNode = None  # type: ignore[assignment]
    routing: RoutingTable = field(default_factory=lambda: RoutingTable(name="T-ua"))
    request_buffer: Optional[ShuffleBuffer] = None
    requests_processed: int = 0
    responses_processed: int = 0
    #: Crash-stop failure flag: a dead instance silently drops traffic
    #: (clients recover via timeout + retry).
    alive: bool = True
    #: Bumped on every restart; callbacks scheduled by a previous life
    #: carry their generation and go inert once it is stale.
    generation: int = 0
    #: Transforms rejected with a retryable error (e.g. stale keys
    #: after a breach-response rotation).
    transform_errors: int = 0
    #: Responses dropped because their routing entry did not survive a
    #: crash/restart (the client recovers via timeout + retry).
    stale_responses: int = 0
    #: Requests decrypted under the previous epoch's private key during
    #: a dual-epoch window (always re-encrypted forward under the new).
    previous_epoch_decrypts: int = 0
    #: Virtual time the previous epoch's keys were last needed; the
    #: rotation coordinator retires the old epoch only after this has
    #: been quiet longer than the shuffle timeout.
    last_previous_epoch_use: Optional[float] = None
    #: Epoch tags stripped at the front door (pre-shuffle, so batches
    #: never carry an epoch marker an adversary could partition by).
    epoch_tags_seen: int = 0
    #: Causal trace ids severed at the front door (pre-shuffle, so no
    #: trace can be followed through the batch — the linkage channel a
    #: conventional tracer would open is closed here by construction).
    trace_tags_seen: int = 0
    #: Bounded ingress queue (overload mode only; ``None`` otherwise).
    ingress: Optional[ConcurrentQueue] = None
    #: Front-door admission controller (overload mode only).
    admission: Optional[AdmissionController] = None
    #: Requests shed at this instance, keyed by ``(stage, reason)``.
    shed_totals: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Requests rejected because every IA backend was ejected.
    no_upstream: int = 0
    #: Non-ok responses rewritten to the uniform reject before they
    #: crossed a protected hop.
    rejects_normalized: int = 0
    #: Shuffle batches sealed into a single hybrid envelope
    #: (batch-envelope mode only).
    batch_envelopes_sealed: int = 0
    #: Telemetry hooks (set by ``instrument_overload``): called per shed
    #: with ``(stage, reason)`` / per arriving deadline with the
    #: remaining budget in seconds.
    shed_observer: Optional[Callable[[str, str], None]] = None
    deadline_observer: Optional[Callable[[float], None]] = None
    _pump_window: int = 0
    _announced_sheds: Set[Tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.name, loop=self.runtime.loop, cores=2)
        if self.runtime.config.shuffling and self.request_buffer is None:
            self.request_buffer = ShuffleBuffer(
                loop=self.runtime.loop,
                rng=self.runtime.rng,
                size=self.runtime.config.shuffle_size,
                timeout=self.runtime.config.shuffle_timeout,
                release=self._start_processing,
                name=f"{self.name}-requests",
            )
        codec = self.runtime.codec
        if (
            codec is not None
            and codec.batch_envelopes
            and self.runtime.config.encryption
            and self.request_buffer is not None
            # Runtimes without a shared IA key (multi-tenant stacks
            # hold per-tenant keys instead) fall back to per-request
            # sends; a batch envelope needs one sealing key.
            and self.runtime.ia_public is not None
        ):
            # Batch-envelope mode: a flush becomes one sealed envelope
            # to one IA instance instead of S independent sends.
            self.request_buffer.release_batch = self._release_batch
        policy = self.runtime.overload
        if policy is not None:
            if self.ingress is None:
                self.ingress = policy.make_ingress_queue(
                    f"{self.name}-ingress", clock=lambda: self.runtime.loop.now
                )
            self.ingress.on_shed = self._shed_from_queue
            if self.admission is None:
                self.admission = policy.make_admission()
            # The pump never throttles below a full shuffle batch:
            # bounding concurrency must not starve the buffer under S.
            self._pump_window = max(
                policy.max_inflight, self.runtime.config.shuffle_size
            )

    @property
    def address(self) -> str:
        """Network address of this instance."""
        return self.name

    @property
    def pending(self) -> int:
        """Outstanding work (load-balancer signal)."""
        buffered = self.request_buffer.pending if self.request_buffer else 0
        queued = self.ingress.depth if self.ingress is not None else 0
        return self.node.pending + len(self.routing) + buffered + queued

    @property
    def sheds(self) -> int:
        """Total requests shed at this instance (all stages)."""
        return sum(self.shed_totals.values())

    def overload_signal(self) -> OverloadSignal:
        """Point-in-time overload indicators for this instance."""
        depth = self.ingress.depth if self.ingress is not None else 0
        sojourn = self.ingress.oldest_sojourn() if self.ingress is not None else 0.0
        pressure = (
            self.runtime.costs.sgx.paging_pressure(len(self.routing))
            if self.runtime.config.sgx
            else 0.0
        )
        return OverloadSignal(
            queue_depth=depth,
            queue_sojourn=sojourn,
            inflight=self.node.pending,
            epc_pressure=pressure,
        )

    def _count_shed(self, stage: str, reason: str) -> None:
        key = (stage, reason)
        self.shed_totals[key] = self.shed_totals.get(key, 0) + 1
        if self.shed_observer is not None:
            self.shed_observer(stage, reason)
        telemetry = self.runtime.telemetry
        if telemetry is not None and key not in self._announced_sheds:
            # Sparse: one event per (stage, reason) per instance life;
            # volumes live in pprox_shed_total.  Payload carries no
            # request identifiers, so the "ua" redaction role has
            # nothing to scrub but also nothing to leak.
            self._announced_sheds.add(key)
            telemetry.event_log.emit(
                "shed",
                "ua",
                {
                    "event": "request_shed",
                    "stage": stage,
                    "reason": reason,
                    "instance": self.name,
                },
            )

    def _shed_from_queue(self, entry: tuple, reason: str) -> None:
        request, reply = entry[0], entry[1]
        self._count_shed(STAGE_QUEUE, reason)
        reply(uniform_reject(request.request_id))

    # -- request path --------------------------------------------------

    def fail(self) -> int:
        """Crash-stop this instance: all in-flight and future traffic
        addressed to it is lost, including its buffered shuffle batch.
        Returns the number of buffered entries drained."""
        self.alive = False
        if self.request_buffer is not None:
            return self.request_buffer.drain()
        return 0

    def restart(self, enclave: Enclave) -> None:
        """Come back from a crash with a freshly provisioned enclave.

        The caller (see :meth:`PProxService.restart_instance
        <repro.proxy.service.PProxService.restart_instance>`) must have
        completed remote attestation and key provisioning on *enclave*
        first — an unattested enclave holds no layer secrets and could
        not serve.  Pre-crash routing state is gone (crash-stop), so a
        fresh routing table starts this life; late responses addressed
        to the old life are counted in ``stale_responses`` and dropped.
        """
        if self.alive:
            raise RuntimeError(f"instance {self.name!r} is alive; nothing to restart")
        if not enclave.attested:
            raise ValueError(
                f"enclave {enclave.name!r} must complete attestation and "
                "provisioning before it can serve"
            )
        self.generation += 1
        self.enclave = enclave
        self.routing = RoutingTable(name=f"T-ua-g{self.generation}")
        policy = self.runtime.overload
        if policy is not None:
            # Pre-crash queue entries are crash-stop casualties exactly
            # like the shuffle batch: the new life starts empty.
            self.ingress = policy.make_ingress_queue(
                f"{self.name}-ingress-g{self.generation}",
                clock=lambda: self.runtime.loop.now,
            )
            self.ingress.on_shed = self._shed_from_queue
        self.alive = True

    def receive_request(self, request: Request, reply: ReplyFn) -> None:
        """Entry point for a client request delivered by the network."""
        if not self.alive:
            return
        if EPOCH_FIELD in request.fields:
            # Strip the epoch tag before the request can enter the
            # shuffle buffer: whatever a batch holds is tag-free, so
            # its composition can never be partitioned by epoch.  The
            # tag is only a hint anyway — decryption trials run
            # active-epoch-first regardless.
            request, _ = strip_epoch(request)
            self.epoch_tags_seen += 1
        if TRACE_FIELD in request.fields:
            # Sever the causal trace here, unconditionally: downstream
            # of this line the request is indistinguishable from its
            # batch peers, and post-shuffle attribution happens only at
            # batch granularity through aggregate fan-in counts.
            request, _ = strip_trace(request)
            self.trace_tags_seen += 1
            if self.runtime.causal is not None:
                self.runtime.causal.absorb(self.name)
        if self.ingress is None:
            entry = (request, reply)
            if self.request_buffer is not None:
                self.request_buffer.add(entry)
            else:
                self._start_processing(entry)
            return
        policy = self.runtime.overload
        remaining = decode_deadline(request)
        if remaining is not None and self.deadline_observer is not None:
            self.deadline_observer(remaining)
        if policy.enforce_deadlines and remaining is not None and remaining <= 0.0:
            # Spent budget: the client already gave up, so shed before
            # any enclave entry-cost is paid for this request.
            self._count_shed(STAGE_DEADLINE, "expired")
            reply(uniform_reject(request.request_id))
            return
        if self.admission is not None:
            refusal = self.admission.admit(self.overload_signal())
            if refusal is not None:
                self._count_shed(STAGE_ADMISSION, refusal)
                reply(uniform_reject(request.request_id))
                return
        self.ingress.push((request, reply, self.runtime.loop.now, remaining))
        self._pump()

    def _pump(self) -> None:
        """Drain admitted entries into the shuffle buffer / node while
        the in-flight window has room.  Sheds decided at dequeue time
        (CoDel sojourn) happen here — still pre-shuffle."""
        if self.ingress is None:
            return
        while True:
            buffered = self.request_buffer.pending if self.request_buffer else 0
            if self.node.pending + buffered >= self._pump_window:
                return
            entry = self.ingress.pop()
            if entry is None:
                return
            if self.request_buffer is not None:
                self.request_buffer.add(entry)
            else:
                self._start_processing(entry)

    def _start_processing(self, entry: tuple) -> None:
        request, reply = entry[0], entry[1]
        arrived = entry[2] if len(entry) > 2 else None
        remaining = entry[3] if len(entry) > 3 else None
        shuffle_wait = (
            self.request_buffer.last_wait if self.request_buffer is not None else 0.0
        )
        service_time = self.runtime.costs.ua_request_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._forward(
                request,
                reply,
                service_time,
                shuffle_wait,
                generation,
                arrived=arrived,
                remaining=remaining,
            ),
        )

    def _forward(
        self,
        request: Request,
        reply: ReplyFn,
        service_time: float = 0.0,
        shuffle_wait: float = 0.0,
        generation: Optional[int] = None,
        arrived: Optional[float] = None,
        remaining: Optional[float] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        ecalls_before = self.enclave.ecall_count
        try:
            transformed, response_key = self._transform_request(request)
        except Exception as exc:
            # Stale client material vs. rotated layer keys (breach
            # response mid-flight): reject retryably, never crash.
            self.transform_errors += 1
            reply(transform_error_response(request, exc))
            self._pump()
            return
        try:
            ia = self.ia_balancer.pick()
        except BalancerError:
            # Every IA is ejected (NoUpstream): nowhere to route, so
            # reject retryably before registering any routing state.
            # This request already traversed the shuffle batch, so it
            # is not a load shed — but the reject is still the uniform
            # message, indistinguishable from one.
            self.no_upstream += 1
            self._count_shed(STAGE_UPSTREAM, "no_upstream")
            reply(uniform_reject(request.request_id))
            self._pump()
            return
        if remaining is not None:
            # Charge this hop's queueing + service time to the budget
            # and restamp (the hardened-mode transform rebuilds the
            # request from sealed inner fields, dropping the top-level
            # budget).  Never shed here: the request already traversed
            # the shuffle, and post-shuffle drops would thin the batch
            # below S.
            if arrived is not None:
                remaining = charge(remaining, self.runtime.loop.now - arrived)
            transformed = stamp_deadline(transformed, remaining)
        self.routing.register(request.request_id, (reply, response_key))
        self.requests_processed += 1
        network = self.runtime.network
        codec = self.runtime.codec
        telemetry = self.runtime.telemetry

        def reply_from_ia(response: Response) -> None:
            if telemetry is not None:
                # Same virtual instant as the ia->ua wire record below.
                telemetry.tracer.record_hop(response.request_id, "ia", "ua")
            ship(network, codec, ia.address, self.address, response,
                 self._receive_response)

        self.enclave.ocall()
        if telemetry is not None:
            telemetry.tracer.annotate(
                request.request_id,
                instance=self.name,
                service_seconds=service_time,
                shuffle_wait_seconds=shuffle_wait,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
            telemetry.tracer.record_hop(request.request_id, "ua", "ia")
        ship(network, codec, self.address, ia.address, transformed,
             lambda req: ia.receive_request(req, reply_from_ia))
        self._pump()

    # -- batch-envelope request path -----------------------------------

    def _release_batch(self, batch: list) -> None:
        """Shuffle-flush hook in batch-envelope mode.

        The flushed batch is transformed per request on this node
        (same enclave legs as the per-request path), collected, then
        sealed into ONE hybrid envelope and sent to one IA instance —
        amortizing the asymmetric operation across the whole batch.
        """
        collector = _BatchCollector(expected=len(batch))
        now = self.runtime.loop.now
        for entry, enqueued_at in batch:
            request, reply = entry[0], entry[1]
            arrived = entry[2] if len(entry) > 2 else None
            remaining = entry[3] if len(entry) > 3 else None
            shuffle_wait = now - enqueued_at
            service_time = self.runtime.costs.ua_request_leg(
                self.runtime.config, len(self.routing), self.enclave.performance_penalty
            )
            generation = self.generation
            self.node.submit(
                service_time,
                lambda request=request, reply=reply, service_time=service_time,
                shuffle_wait=shuffle_wait, generation=generation,
                arrived=arrived, remaining=remaining: self._forward_batched(
                    request,
                    reply,
                    collector,
                    service_time,
                    shuffle_wait,
                    generation,
                    arrived=arrived,
                    remaining=remaining,
                ),
            )

    def _forward_batched(
        self,
        request: Request,
        reply: ReplyFn,
        collector: _BatchCollector,
        service_time: float = 0.0,
        shuffle_wait: float = 0.0,
        generation: Optional[int] = None,
        arrived: Optional[float] = None,
        remaining: Optional[float] = None,
    ) -> None:
        """Per-request half of a batch flush: transform and collect."""
        if not self.alive or (generation is not None and generation != self.generation):
            collector.skip()
            self._maybe_seal(collector)
            return
        ecalls_before = self.enclave.ecall_count
        try:
            transformed, response_key = self._transform_request(request)
        except Exception as exc:
            self.transform_errors += 1
            reply(transform_error_response(request, exc))
            collector.skip()
            self._maybe_seal(collector)
            self._pump()
            return
        if remaining is not None:
            if arrived is not None:
                remaining = charge(remaining, self.runtime.loop.now - arrived)
            transformed = stamp_deadline(transformed, remaining)
        self.routing.register(request.request_id, (reply, response_key))
        self.requests_processed += 1
        self.enclave.ocall()
        telemetry = self.runtime.telemetry
        if telemetry is not None:
            telemetry.tracer.annotate(
                request.request_id,
                instance=self.name,
                service_seconds=service_time,
                shuffle_wait_seconds=shuffle_wait,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
            telemetry.tracer.record_hop(request.request_id, "ua", "ia")
        collector.add(transformed)
        self._maybe_seal(collector)
        self._pump()

    def _maybe_seal(self, collector: _BatchCollector) -> None:
        if not collector.complete:
            return
        collector.sealed = True
        if not collector.requests:
            return
        self._seal_and_send(collector.requests)

    def _seal_and_send(self, requests: list) -> None:
        """Seal transformed *requests* into one envelope, route to one IA."""
        codec = self.runtime.codec
        try:
            ia = self.ia_balancer.pick()
        except BalancerError:
            self.no_upstream += len(requests)
            for request in requests:
                if request.request_id in self.routing:
                    reply, _ = self.routing.consume(request.request_id)
                    self._count_shed(STAGE_UPSTREAM, "no_upstream")
                    reply(uniform_reject(request.request_id))
            return
        frames = [codec.encode_request(request) for request in requests]
        sealer = EnvelopeCodec(self.runtime.provider)
        blob = sealer.seal_batch(self.runtime.ia_public(), frames)
        envelope = BatchEnvelope(
            blob=blob,
            request_ids=[request.request_id for request in requests],
            verbs=[request.verb for request in requests],
            source=self.address,
        )
        self.batch_envelopes_sealed += 1
        network = self.runtime.network
        telemetry = self.runtime.telemetry

        def reply_from_ia(response: Response) -> None:
            if telemetry is not None:
                telemetry.tracer.record_hop(response.request_id, "ia", "ua")
            ship(network, codec, ia.address, self.address, response,
                 self._receive_response)

        network.send(
            self.address,
            ia.address,
            envelope,
            envelope.size_bytes(),
            lambda env: ia.receive_batch(env, reply_from_ia),
        )

    # -- response path -------------------------------------------------

    def _receive_response(self, response: Response) -> None:
        if not self.alive:
            return
        service_time = self.runtime.costs.ua_response_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._return_to_client(response, service_time, generation),
        )

    def _return_to_client(
        self,
        response: Response,
        service_time: float = 0.0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        if response.request_id not in self.routing:
            # The route predates a crash/restart; the client's retry
            # already travels under a fresh id.
            self.stale_responses += 1
            self._pump()
            return
        reply, response_key = self.routing.consume(response.request_id)
        if not response.ok:
            # Whatever failed upstream (brownout text, guard shed,
            # transform error), the client-facing wire carries only the
            # canonical reject: cause strings correlate with IA/LRS
            # state that must stay behind the redaction boundary.
            self.rejects_normalized += 1
            response = uniform_reject(response.request_id)
        wrapped = protocol.ua_wrap_response(
            self.runtime.provider,
            self.runtime.config,
            response_key,
            response,
            codec=self.runtime.codec,
        )
        self.responses_processed += 1
        self.enclave.ocall()
        telemetry = self.runtime.telemetry
        if telemetry is not None:
            # The ua_outbound span closes when the client-side library
            # records the ua->client hop inside *reply*.
            telemetry.tracer.annotate(
                response.request_id,
                instance=self.name,
                service_seconds=service_time,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
        reply(wrapped)
        self._pump()

    def _keys_for(self, tenant: str) -> LayerKeys:
        """Resolve key material; single-tenant deployments ignore
        *tenant* (multi-tenant subclasses dispatch on it, §6.3)."""
        from repro.sgx.provisioning import UA_SECRET_K, UA_SECRET_SK

        return _layer_keys(self.enclave, UA_SECRET_SK, UA_SECRET_K)

    def _transform_request(self, request: Request) -> Tuple[Request, Optional[bytes]]:
        """UA transform, dual-epoch aware.

        Outside a rotation window this is exactly the legacy single-key
        call (zero extra ecalls — the window check is host-side).
        During a window, decryption is trialled under the active then
        the previous private key; the forward pseudonym is minted under
        the active symmetric key either way, so nothing downstream of
        this enclave ever sees an old-epoch identifier again.
        """
        config = self.runtime.config
        provider = self.runtime.provider
        codec = self.runtime.codec
        if not config.encryption:
            return protocol.ua_transform_request(
                provider, None, config, request, self.address, codec=codec
            )
        active = self._keys_for(_tenant_of(request))
        window = epoch_window_of(self.enclave)
        if window is None:
            return protocol.ua_transform_request(
                provider, active, config, request, self.address, codec=codec
            )
        last_error: Optional[Exception] = None
        for candidate, is_previous in window_candidates(self.enclave, active, window):
            try:
                if not config.harden_client_hop:
                    # Providers without authenticated decryption return
                    # garbage (not an exception) under the wrong key;
                    # the fixed-size identifier encoding acts as the
                    # validator.  Hardened mode self-validates via its
                    # JSON envelope inside the transform.
                    decode_identifier(
                        provider.asym_decrypt(
                            candidate,
                            self.runtime.field_blob(request.fields["user"]),
                        )
                    )
                result = protocol.ua_transform_request(
                    provider, candidate, config, request, self.address, codec=codec
                )
            except Exception as exc:
                last_error = exc
                continue
            if is_previous:
                self.previous_epoch_decrypts += 1
                self.last_previous_epoch_use = self.runtime.loop.now
            return result
        raise last_error  # type: ignore[misc]  # loop ran at least once


@dataclass
class ItemAnonymizer:
    """One IA-layer proxy instance (second layer, LRS-facing)."""

    name: str
    runtime: ProxyRuntime
    enclave: Enclave
    #: Callable returning the LRS backend for the next request.
    lrs_picker: Callable[[], object]
    node: SimNode = None  # type: ignore[assignment]
    routing: RoutingTable = field(default_factory=lambda: RoutingTable(name="T-ia"))
    response_buffer: Optional[ShuffleBuffer] = None
    requests_processed: int = 0
    responses_processed: int = 0
    #: Crash-stop failure flag (see :class:`UserAnonymizer`).
    alive: bool = True
    #: Restart generation (see :class:`UserAnonymizer`).
    generation: int = 0
    transform_errors: int = 0
    stale_responses: int = 0
    #: Dual-epoch accounting (see :class:`UserAnonymizer`).
    previous_epoch_decrypts: int = 0
    last_previous_epoch_use: Optional[float] = None
    #: Sealed batch envelopes opened (batch-envelope mode only).
    batch_envelopes_opened: int = 0
    #: Bounded ingress queue (overload mode only; ``None`` otherwise).
    ingress: Optional[ConcurrentQueue] = None
    #: Requests shed at this instance, keyed by ``(stage, reason)``.
    shed_totals: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Requests rejected because the LRS pool had no backend.
    no_upstream: int = 0
    #: Non-ok responses rewritten to the uniform reject before they
    #: crossed the ia->ua hop.
    rejects_normalized: int = 0
    #: Telemetry hooks (see :class:`UserAnonymizer`).
    shed_observer: Optional[Callable[[str, str], None]] = None
    deadline_observer: Optional[Callable[[float], None]] = None
    _pump_window: int = 0
    _announced_sheds: Set[Tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.name, loop=self.runtime.loop, cores=2)
        if self.runtime.config.shuffling and self.response_buffer is None:
            self.response_buffer = ShuffleBuffer(
                loop=self.runtime.loop,
                rng=self.runtime.rng,
                size=self.runtime.config.shuffle_size,
                timeout=self.runtime.config.shuffle_timeout,
                release=self._start_response_processing,
                name=f"{self.name}-responses",
            )
        policy = self.runtime.overload
        if policy is not None:
            if self.ingress is None:
                self.ingress = policy.make_ingress_queue(
                    f"{self.name}-ingress", clock=lambda: self.runtime.loop.now
                )
            self.ingress.on_shed = self._shed_from_queue
            # No admission controller here: the UA is the front door.
            # Response-side submissions share the node, so the window
            # must cover a full flushed batch of S responses too.
            self._pump_window = max(
                policy.max_inflight, self.runtime.config.shuffle_size
            )

    @property
    def address(self) -> str:
        """Network address of this instance."""
        return self.name

    @property
    def pending(self) -> int:
        """Outstanding work (load-balancer signal)."""
        buffered = self.response_buffer.pending if self.response_buffer else 0
        queued = self.ingress.depth if self.ingress is not None else 0
        return self.node.pending + len(self.routing) + buffered + queued

    @property
    def sheds(self) -> int:
        """Total requests shed at this instance (all stages)."""
        return sum(self.shed_totals.values())

    def overload_signal(self) -> OverloadSignal:
        """Point-in-time overload indicators for this instance."""
        depth = self.ingress.depth if self.ingress is not None else 0
        sojourn = self.ingress.oldest_sojourn() if self.ingress is not None else 0.0
        pressure = (
            self.runtime.costs.sgx.paging_pressure(len(self.routing))
            if self.runtime.config.sgx
            else 0.0
        )
        return OverloadSignal(
            queue_depth=depth,
            queue_sojourn=sojourn,
            inflight=self.node.pending,
            epc_pressure=pressure,
        )

    def _count_shed(self, stage: str, reason: str) -> None:
        key = (stage, reason)
        self.shed_totals[key] = self.shed_totals.get(key, 0) + 1
        if self.shed_observer is not None:
            self.shed_observer(stage, reason)
        telemetry = self.runtime.telemetry
        if telemetry is not None and key not in self._announced_sheds:
            self._announced_sheds.add(key)
            telemetry.event_log.emit(
                "shed",
                "ia",
                {
                    "event": "request_shed",
                    "stage": stage,
                    "reason": reason,
                    "instance": self.name,
                },
            )

    def _shed_from_queue(self, entry: tuple, reason: str) -> None:
        request, reply = entry[0], entry[1]
        self._count_shed(STAGE_QUEUE, reason)
        reply(uniform_reject(request.request_id))

    # -- request path --------------------------------------------------

    def fail(self) -> int:
        """Crash-stop this instance (drops its buffered response batch).
        Returns the number of buffered entries drained."""
        self.alive = False
        if self.response_buffer is not None:
            return self.response_buffer.drain()
        return 0

    def restart(self, enclave: Enclave) -> None:
        """Come back from a crash (see :meth:`UserAnonymizer.restart`)."""
        if self.alive:
            raise RuntimeError(f"instance {self.name!r} is alive; nothing to restart")
        if not enclave.attested:
            raise ValueError(
                f"enclave {enclave.name!r} must complete attestation and "
                "provisioning before it can serve"
            )
        self.generation += 1
        self.enclave = enclave
        self.routing = RoutingTable(name=f"T-ia-g{self.generation}")
        policy = self.runtime.overload
        if policy is not None:
            self.ingress = policy.make_ingress_queue(
                f"{self.name}-ingress-g{self.generation}",
                clock=lambda: self.runtime.loop.now,
            )
            self.ingress.on_shed = self._shed_from_queue
        self.alive = True

    def receive_request(self, request: Request, reply: ReplyFn) -> None:
        """Entry point for a UA-forwarded request."""
        if not self.alive:
            return
        if self.ingress is None:
            self._start_request_processing((request, reply))
            return
        policy = self.runtime.overload
        remaining = decode_deadline(request)
        if remaining is not None and self.deadline_observer is not None:
            self.deadline_observer(remaining)
        if policy.enforce_deadlines and remaining is not None and remaining <= 0.0:
            # Pre-enclave shed.  Safe for anonymity: this is the IA's
            # *request* path; the batch the IA randomizes is responses,
            # and the reject joins that shuffle downstream like any
            # LRS reply would.
            self._count_shed(STAGE_DEADLINE, "expired")
            reply(uniform_reject(request.request_id))
            return
        self.ingress.push((request, reply, self.runtime.loop.now, remaining))
        self._pump()

    def receive_batch(self, envelope: BatchEnvelope, reply: ReplyFn) -> None:
        """Entry point for a UA-sealed shuffle batch (batch-envelope
        mode): open the single hybrid envelope, decode the frames, and
        feed each inner request through the normal request path."""
        if not self.alive:
            return
        try:
            requests = self._open_envelope(envelope)
        except Exception as exc:
            del exc
            # The whole batch is undecryptable (e.g. sealed under keys
            # this enclave no longer holds): every inner request gets
            # the same uniform retryable reject.
            self.transform_errors += 1
            for request_id in envelope.request_ids:
                reply(uniform_reject(request_id))
            return
        self.batch_envelopes_opened += 1
        for request in requests:
            self.receive_request(request, reply)

    def _open_envelope(self, envelope: BatchEnvelope) -> list:
        """Decrypt and decode a batch envelope, dual-epoch aware.

        A wrong-epoch private key yields garbage plaintext (providers
        decrypt silently); the frame length-prefix structure acts as
        the validator, exactly like the fixed-size identifier encoding
        does on the per-request path.
        """
        codec = self.runtime.codec
        opener = EnvelopeCodec(self.runtime.provider)
        active = self._keys_for(DEFAULT_TENANT)
        window = epoch_window_of(self.enclave)
        frames = None
        if window is None:
            frames = opener.open_batch(active, envelope.blob)
        else:
            last_error: Optional[Exception] = None
            for candidate, is_previous in window_candidates(self.enclave, active, window):
                try:
                    frames = opener.open_batch(candidate, envelope.blob)
                except Exception as exc:
                    last_error = exc
                    continue
                if is_previous:
                    self._note_previous_use()
                break
            if frames is None:
                raise last_error  # type: ignore[misc]  # loop ran at least once
        if len(frames) != len(envelope.request_ids):
            raise ValueError(
                f"batch envelope frame count {len(frames)} != "
                f"{len(envelope.request_ids)} announced requests"
            )
        return [
            codec.decode_request(
                frame,
                verb=verb,
                request_id=request_id,
                client_address=envelope.source,
            )
            for frame, request_id, verb in zip(
                frames, envelope.request_ids, envelope.verbs
            )
        ]

    def _pump(self) -> None:
        """Drain admitted requests into the node while the in-flight
        window has room (dequeue-time sheds happen here)."""
        if self.ingress is None:
            return
        while self.node.pending < self._pump_window:
            entry = self.ingress.pop()
            if entry is None:
                return
            self._start_request_processing(entry)

    def _start_request_processing(self, entry: tuple) -> None:
        request, reply = entry[0], entry[1]
        arrived = entry[2] if len(entry) > 2 else None
        remaining = entry[3] if len(entry) > 3 else None
        service_time = self.runtime.costs.ia_request_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._forward(
                request,
                reply,
                service_time,
                generation,
                arrived=arrived,
                remaining=remaining,
            ),
        )

    def _forward(
        self,
        request: Request,
        reply: ReplyFn,
        service_time: float = 0.0,
        generation: Optional[int] = None,
        arrived: Optional[float] = None,
        remaining: Optional[float] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        ecalls_before = self.enclave.ecall_count
        try:
            transformed, context = self._transform_request(request)
        except Exception as exc:
            self.transform_errors += 1
            reply(transform_error_response(request, exc))
            self._pump()
            return
        try:
            backend = self._pick_backend(request)
        except BalancerError:
            # NoUpstream: the LRS pool is empty (every backend ejected).
            self.no_upstream += 1
            self._count_shed(STAGE_UPSTREAM, "no_upstream")
            reply(uniform_reject(request.request_id))
            self._pump()
            return
        if remaining is not None:
            if arrived is not None:
                remaining = charge(remaining, self.runtime.loop.now - arrived)
            transformed = stamp_deadline(transformed, remaining)
        self.routing.register(request.request_id, (reply, context))
        self.requests_processed += 1
        network = self.runtime.network
        codec = self.runtime.codec
        telemetry = self.runtime.telemetry
        # The IA is the only component that knows, by construction, that
        # this peer is an LRS backend: register it in the operator-side
        # role directory on first contact.
        if backend.address not in network.roles:
            network.register_role(backend.address, "lrs")

        def reply_from_lrs(response: Response) -> None:
            if telemetry is not None:
                telemetry.tracer.annotate(response.request_id, backend=backend.address)
                telemetry.tracer.record_hop(response.request_id, "lrs", "ia")
            ship(network, codec, backend.address, self.address, response,
                 self._receive_response)

        self.enclave.ocall()
        if telemetry is not None:
            telemetry.tracer.annotate(
                request.request_id,
                instance=self.name,
                service_seconds=service_time,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
            telemetry.tracer.record_hop(request.request_id, "ia", "lrs")
        ship(network, codec, self.address, backend.address, transformed,
             lambda req: backend.handle(req, reply_from_lrs))
        self._pump()

    # -- response path -------------------------------------------------

    def _receive_response(self, response: Response) -> None:
        if not self.alive:
            return
        if self.response_buffer is not None:
            self.response_buffer.add(response)
        else:
            self._start_response_processing(response)

    def _start_response_processing(self, response: Response) -> None:
        shuffle_wait = (
            self.response_buffer.last_wait if self.response_buffer is not None else 0.0
        )
        item_count = len(response.fields.get("items", []))
        service_time = self.runtime.costs.ia_response_leg(
            self.runtime.config,
            len(self.routing),
            item_count,
            self.enclave.performance_penalty,
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._return_to_ua(
                response, service_time, shuffle_wait, item_count, generation
            ),
        )

    def _pick_backend(self, request: Request):
        """Choose the LRS backend; multi-tenant subclasses route by
        the request's tenant."""
        return self.lrs_picker()

    def _return_to_ua(
        self,
        response: Response,
        service_time: float = 0.0,
        shuffle_wait: float = 0.0,
        item_count: int = 0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        if response.request_id not in self.routing:
            self.stale_responses += 1
            self._pump()
            return
        reply, context = self.routing.consume(response.request_id)
        ecalls_before = self.enclave.ecall_count
        try:
            keys = (
                self._keys_for(context.tenant) if self.runtime.config.encryption else None
            )
            previous = self._previous_keys() if keys is not None else None
            transformed = protocol.ia_transform_response(
                self.runtime.provider,
                keys,
                self.runtime.config,
                context,
                response,
                previous=previous,
                on_previous_use=self._note_previous_use,
                codec=self.runtime.codec,
            )
        except Exception as exc:
            del exc
            self.transform_errors += 1
            reply(uniform_reject(response.request_id))
            self._pump()
            return
        if not transformed.ok:
            # ia_transform_response passes failures through untouched;
            # rewrite them here so brownout/guard/backend error text
            # never crosses the ia->ua hop — a shed must look exactly
            # like any other failure from the UA's side.
            self.rejects_normalized += 1
            transformed = uniform_reject(transformed.request_id)
        self.responses_processed += 1
        self.enclave.ocall()
        telemetry = self.runtime.telemetry
        if telemetry is not None:
            # The ia_outbound span closes when the UA records the
            # ia->ua hop inside *reply*.
            telemetry.tracer.annotate(
                response.request_id,
                instance=self.name,
                service_seconds=service_time,
                shuffle_wait_seconds=shuffle_wait,
                item_count=item_count,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
        reply(transformed)
        self._pump()

    def _keys_for(self, tenant: str) -> LayerKeys:
        """Resolve key material; single-tenant deployments ignore
        *tenant* (multi-tenant subclasses dispatch on it, §6.3)."""
        from repro.sgx.provisioning import IA_SECRET_K, IA_SECRET_SK

        return _layer_keys(self.enclave, IA_SECRET_SK, IA_SECRET_K)

    def _note_previous_use(self) -> None:
        self.previous_epoch_decrypts += 1
        self.last_previous_epoch_use = self.runtime.loop.now

    def _previous_keys(self) -> Optional[LayerKeys]:
        """Previous-epoch key material while a window is open (the
        presence check is host-side; reading the slots is an ecall)."""
        window = epoch_window_of(self.enclave)
        if window is None:
            return None
        prev_sk_slot, prev_k_slot = window.secret_slots()
        return _layer_keys(self.enclave, prev_sk_slot, prev_k_slot)

    def _transform_request(self, request: Request) -> Tuple[Request, "protocol.IaRequestContext"]:
        """IA transform, dual-epoch aware (see :meth:`UserAnonymizer.
        _transform_request`).

        POSTs are validated through the fixed-size identifier encoding
        before committing to a candidate key.  GET temporary keys are
        32 opaque bytes with no structure to validate, so under a
        provider whose wrong-key decryption returns garbage silently
        the active-epoch trial always "wins"; a stale-epoch GET then
        yields an undecodable blob and heals through the client's
        decode-failure retry, re-encoded under the current epoch.
        """
        config = self.runtime.config
        provider = self.runtime.provider
        codec = self.runtime.codec
        if not config.encryption:
            return protocol.ia_transform_request(
                provider, None, config, request, self.address, codec=codec
            )
        active = self._keys_for(_tenant_of(request))
        window = epoch_window_of(self.enclave)
        if window is None:
            return protocol.ia_transform_request(
                provider, active, config, request, self.address, codec=codec
            )
        last_error: Optional[Exception] = None
        for candidate, is_previous in window_candidates(self.enclave, active, window):
            try:
                if request.verb == Verb.POST:
                    decode_identifier(
                        provider.asym_decrypt(
                            candidate,
                            self.runtime.field_blob(request.fields["item"]),
                        )
                    )
                result = protocol.ia_transform_request(
                    provider, candidate, config, request, self.address, codec=codec
                )
            except Exception as exc:
                last_error = exc
                continue
            if is_previous:
                self._note_previous_use()
            return result
        raise last_error  # type: ignore[misc]  # loop ran at least once
