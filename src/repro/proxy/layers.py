"""The UA and IA proxy layer instances (data plane).

Each instance models one proxy enclave and its host node, as
described in §5: an event-driven server (outside the enclave) feeding
a pool of data-processing workers (inside the enclave) through a
concurrent queue, a routing table ``T`` for pending requests, and a
shuffle buffer for the direction that instance randomizes (UA:
requests, IA: responses).

Processing is charged to the instance's 2-core
:class:`repro.simnet.node.SimNode` using the calibrated
:class:`repro.proxy.costs.ProxyCostModel`; transformations perform the
*actual* cryptographic rewrites from :mod:`repro.proxy.protocol`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.proxy.costs import ProxyCostModel
from repro.proxy.shuffler import ShuffleBuffer
from repro.rest.messages import Request, Response
from repro.rest.routing import RoutingTable
from repro.sgx.enclave import Enclave
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import LoadBalancer
from repro.simnet.network import Network
from repro.simnet.node import SimNode
from repro.telemetry.types import TelemetryLike

__all__ = [
    "UserAnonymizer",
    "ItemAnonymizer",
    "ProxyRuntime",
    "DEFAULT_TENANT",
    "RETRYABLE_STATUS",
    "transform_error_response",
]

ReplyFn = Callable[[Response], None]

#: Status returned when a proxy layer cannot transform a message (e.g.
#: its keys were rotated while the request was in flight).  Clients
#: treat it like a timeout: back off and retry under a fresh id.
RETRYABLE_STATUS = 503


def transform_error_response(request: Request, exc: Exception) -> Response:
    """A retryable error reply for a failed cryptographic transform.

    Only the exception *type* crosses the wire: exception messages can
    quote the payload being transformed, which may hold identifiers the
    redaction boundary must never see.
    """
    return Response(
        status=RETRYABLE_STATUS,
        fields={"retryable": True, "error": type(exc).__name__},
        request_id=request.request_id,
    )

#: Tenant label used by single-application deployments.
DEFAULT_TENANT = "default"


def _tenant_of(request: Request) -> str:
    """The (public) application identity a request belongs to."""
    tenant = request.fields.get("tenant")
    return tenant if isinstance(tenant, str) else DEFAULT_TENANT


@dataclass
class ProxyRuntime:
    """Shared wiring every proxy instance needs."""

    loop: EventLoop
    network: Network
    rng: random.Random
    provider: CryptoProvider
    config: PProxConfig
    costs: ProxyCostModel
    #: Optional :class:`repro.telemetry.Telemetry` hub.  When absent,
    #: the data plane runs with zero instrumentation overhead.
    telemetry: Optional[TelemetryLike] = None


def _layer_keys(enclave: Enclave, sk_slot: str, k_slot: str) -> LayerKeys:
    """Reconstruct the layer's key material from sealed enclave slots."""
    return LayerKeys(
        private_key=enclave.secret(sk_slot),
        symmetric_key=enclave.secret(k_slot),
    )


def _sgx_attrs(runtime: ProxyRuntime, enclave: Enclave, pending: int) -> dict:
    """Enclave-boundary cost attributes for the currently open span."""
    sgx = runtime.costs.sgx
    if not (runtime.config.sgx and sgx.enabled):
        return {}
    return {
        "sgx_overhead_seconds": sgx.request_overhead(pending, enclave.performance_penalty),
        "epc_paging": pending > sgx.epc_entries,
    }


@dataclass
class UserAnonymizer:
    """One UA-layer proxy instance (first layer, client-facing)."""

    name: str
    runtime: ProxyRuntime
    enclave: Enclave
    ia_balancer: LoadBalancer
    node: SimNode = None  # type: ignore[assignment]
    routing: RoutingTable = field(default_factory=lambda: RoutingTable(name="T-ua"))
    request_buffer: Optional[ShuffleBuffer] = None
    requests_processed: int = 0
    responses_processed: int = 0
    #: Crash-stop failure flag: a dead instance silently drops traffic
    #: (clients recover via timeout + retry).
    alive: bool = True
    #: Bumped on every restart; callbacks scheduled by a previous life
    #: carry their generation and go inert once it is stale.
    generation: int = 0
    #: Transforms rejected with a retryable error (e.g. stale keys
    #: after a breach-response rotation).
    transform_errors: int = 0
    #: Responses dropped because their routing entry did not survive a
    #: crash/restart (the client recovers via timeout + retry).
    stale_responses: int = 0

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.name, loop=self.runtime.loop, cores=2)
        if self.runtime.config.shuffling and self.request_buffer is None:
            self.request_buffer = ShuffleBuffer(
                loop=self.runtime.loop,
                rng=self.runtime.rng,
                size=self.runtime.config.shuffle_size,
                timeout=self.runtime.config.shuffle_timeout,
                release=self._start_processing,
                name=f"{self.name}-requests",
            )

    @property
    def address(self) -> str:
        """Network address of this instance."""
        return self.name

    @property
    def pending(self) -> int:
        """Outstanding work (load-balancer signal)."""
        buffered = self.request_buffer.pending if self.request_buffer else 0
        return self.node.pending + len(self.routing) + buffered

    # -- request path --------------------------------------------------

    def fail(self) -> int:
        """Crash-stop this instance: all in-flight and future traffic
        addressed to it is lost, including its buffered shuffle batch.
        Returns the number of buffered entries drained."""
        self.alive = False
        if self.request_buffer is not None:
            return self.request_buffer.drain()
        return 0

    def restart(self, enclave: Enclave) -> None:
        """Come back from a crash with a freshly provisioned enclave.

        The caller (see :meth:`PProxService.restart_instance
        <repro.proxy.service.PProxService.restart_instance>`) must have
        completed remote attestation and key provisioning on *enclave*
        first — an unattested enclave holds no layer secrets and could
        not serve.  Pre-crash routing state is gone (crash-stop), so a
        fresh routing table starts this life; late responses addressed
        to the old life are counted in ``stale_responses`` and dropped.
        """
        if self.alive:
            raise RuntimeError(f"instance {self.name!r} is alive; nothing to restart")
        if not enclave.attested:
            raise ValueError(
                f"enclave {enclave.name!r} must complete attestation and "
                "provisioning before it can serve"
            )
        self.generation += 1
        self.enclave = enclave
        self.routing = RoutingTable(name=f"T-ua-g{self.generation}")
        self.alive = True

    def receive_request(self, request: Request, reply: ReplyFn) -> None:
        """Entry point for a client request delivered by the network."""
        if not self.alive:
            return
        entry = (request, reply)
        if self.request_buffer is not None:
            self.request_buffer.add(entry)
        else:
            self._start_processing(entry)

    def _start_processing(self, entry: tuple) -> None:
        request, reply = entry
        shuffle_wait = (
            self.request_buffer.last_wait if self.request_buffer is not None else 0.0
        )
        service_time = self.runtime.costs.ua_request_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._forward(request, reply, service_time, shuffle_wait, generation),
        )

    def _forward(
        self,
        request: Request,
        reply: ReplyFn,
        service_time: float = 0.0,
        shuffle_wait: float = 0.0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        ecalls_before = self.enclave.ecall_count
        try:
            keys = (
                self._keys_for(_tenant_of(request))
                if self.runtime.config.encryption
                else None
            )
            transformed, response_key = protocol.ua_transform_request(
                self.runtime.provider, keys, self.runtime.config, request, self.address
            )
        except Exception as exc:
            # Stale client material vs. rotated layer keys (breach
            # response mid-flight): reject retryably, never crash.
            self.transform_errors += 1
            reply(transform_error_response(request, exc))
            return
        self.routing.register(request.request_id, (reply, response_key))
        self.requests_processed += 1
        ia = self.ia_balancer.pick()
        network = self.runtime.network
        telemetry = self.runtime.telemetry

        def reply_from_ia(response: Response) -> None:
            if telemetry is not None:
                # Same virtual instant as the ia->ua wire record below.
                telemetry.tracer.record_hop(response.request_id, "ia", "ua")
            network.send(
                ia.address,
                self.address,
                response,
                response.size_bytes(),
                self._receive_response,
            )

        self.enclave.ocall()
        if telemetry is not None:
            telemetry.tracer.annotate(
                request.request_id,
                instance=self.name,
                service_seconds=service_time,
                shuffle_wait_seconds=shuffle_wait,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
            telemetry.tracer.record_hop(request.request_id, "ua", "ia")
        network.send(
            self.address,
            ia.address,
            transformed,
            transformed.size_bytes(),
            lambda req: ia.receive_request(req, reply_from_ia),
        )

    # -- response path -------------------------------------------------

    def _receive_response(self, response: Response) -> None:
        if not self.alive:
            return
        service_time = self.runtime.costs.ua_response_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._return_to_client(response, service_time, generation),
        )

    def _return_to_client(
        self,
        response: Response,
        service_time: float = 0.0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        if response.request_id not in self.routing:
            # The route predates a crash/restart; the client's retry
            # already travels under a fresh id.
            self.stale_responses += 1
            return
        reply, response_key = self.routing.consume(response.request_id)
        wrapped = protocol.ua_wrap_response(
            self.runtime.provider, self.runtime.config, response_key, response
        )
        self.responses_processed += 1
        self.enclave.ocall()
        telemetry = self.runtime.telemetry
        if telemetry is not None:
            # The ua_outbound span closes when the client-side library
            # records the ua->client hop inside *reply*.
            telemetry.tracer.annotate(
                response.request_id,
                instance=self.name,
                service_seconds=service_time,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
        reply(wrapped)

    def _keys_for(self, tenant: str) -> LayerKeys:
        """Resolve key material; single-tenant deployments ignore
        *tenant* (multi-tenant subclasses dispatch on it, §6.3)."""
        from repro.sgx.provisioning import UA_SECRET_K, UA_SECRET_SK

        return _layer_keys(self.enclave, UA_SECRET_SK, UA_SECRET_K)


@dataclass
class ItemAnonymizer:
    """One IA-layer proxy instance (second layer, LRS-facing)."""

    name: str
    runtime: ProxyRuntime
    enclave: Enclave
    #: Callable returning the LRS backend for the next request.
    lrs_picker: Callable[[], object]
    node: SimNode = None  # type: ignore[assignment]
    routing: RoutingTable = field(default_factory=lambda: RoutingTable(name="T-ia"))
    response_buffer: Optional[ShuffleBuffer] = None
    requests_processed: int = 0
    responses_processed: int = 0
    #: Crash-stop failure flag (see :class:`UserAnonymizer`).
    alive: bool = True
    #: Restart generation (see :class:`UserAnonymizer`).
    generation: int = 0
    transform_errors: int = 0
    stale_responses: int = 0

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.name, loop=self.runtime.loop, cores=2)
        if self.runtime.config.shuffling and self.response_buffer is None:
            self.response_buffer = ShuffleBuffer(
                loop=self.runtime.loop,
                rng=self.runtime.rng,
                size=self.runtime.config.shuffle_size,
                timeout=self.runtime.config.shuffle_timeout,
                release=self._start_response_processing,
                name=f"{self.name}-responses",
            )

    @property
    def address(self) -> str:
        """Network address of this instance."""
        return self.name

    @property
    def pending(self) -> int:
        """Outstanding work (load-balancer signal)."""
        buffered = self.response_buffer.pending if self.response_buffer else 0
        return self.node.pending + len(self.routing) + buffered

    # -- request path --------------------------------------------------

    def fail(self) -> int:
        """Crash-stop this instance (drops its buffered response batch).
        Returns the number of buffered entries drained."""
        self.alive = False
        if self.response_buffer is not None:
            return self.response_buffer.drain()
        return 0

    def restart(self, enclave: Enclave) -> None:
        """Come back from a crash (see :meth:`UserAnonymizer.restart`)."""
        if self.alive:
            raise RuntimeError(f"instance {self.name!r} is alive; nothing to restart")
        if not enclave.attested:
            raise ValueError(
                f"enclave {enclave.name!r} must complete attestation and "
                "provisioning before it can serve"
            )
        self.generation += 1
        self.enclave = enclave
        self.routing = RoutingTable(name=f"T-ia-g{self.generation}")
        self.alive = True

    def receive_request(self, request: Request, reply: ReplyFn) -> None:
        """Entry point for a UA-forwarded request."""
        if not self.alive:
            return
        service_time = self.runtime.costs.ia_request_leg(
            self.runtime.config, len(self.routing), self.enclave.performance_penalty
        )
        generation = self.generation
        self.node.submit(
            service_time, lambda: self._forward(request, reply, service_time, generation)
        )

    def _forward(
        self,
        request: Request,
        reply: ReplyFn,
        service_time: float = 0.0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        ecalls_before = self.enclave.ecall_count
        try:
            keys = (
                self._keys_for(_tenant_of(request))
                if self.runtime.config.encryption
                else None
            )
            transformed, context = protocol.ia_transform_request(
                self.runtime.provider, keys, self.runtime.config, request, self.address
            )
        except Exception as exc:
            self.transform_errors += 1
            reply(transform_error_response(request, exc))
            return
        self.routing.register(request.request_id, (reply, context))
        self.requests_processed += 1
        backend = self._pick_backend(request)
        network = self.runtime.network
        telemetry = self.runtime.telemetry
        # The IA is the only component that knows, by construction, that
        # this peer is an LRS backend: register it in the operator-side
        # role directory on first contact.
        if backend.address not in network.roles:
            network.register_role(backend.address, "lrs")

        def reply_from_lrs(response: Response) -> None:
            if telemetry is not None:
                telemetry.tracer.annotate(response.request_id, backend=backend.address)
                telemetry.tracer.record_hop(response.request_id, "lrs", "ia")
            network.send(
                backend.address,
                self.address,
                response,
                response.size_bytes(),
                self._receive_response,
            )

        self.enclave.ocall()
        if telemetry is not None:
            telemetry.tracer.annotate(
                request.request_id,
                instance=self.name,
                service_seconds=service_time,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
            telemetry.tracer.record_hop(request.request_id, "ia", "lrs")
        network.send(
            self.address,
            backend.address,
            transformed,
            transformed.size_bytes(),
            lambda req: backend.handle(req, reply_from_lrs),
        )

    # -- response path -------------------------------------------------

    def _receive_response(self, response: Response) -> None:
        if not self.alive:
            return
        if self.response_buffer is not None:
            self.response_buffer.add(response)
        else:
            self._start_response_processing(response)

    def _start_response_processing(self, response: Response) -> None:
        shuffle_wait = (
            self.response_buffer.last_wait if self.response_buffer is not None else 0.0
        )
        item_count = len(response.fields.get("items", []))
        service_time = self.runtime.costs.ia_response_leg(
            self.runtime.config,
            len(self.routing),
            item_count,
            self.enclave.performance_penalty,
        )
        generation = self.generation
        self.node.submit(
            service_time,
            lambda: self._return_to_ua(
                response, service_time, shuffle_wait, item_count, generation
            ),
        )

    def _pick_backend(self, request: Request):
        """Choose the LRS backend; multi-tenant subclasses route by
        the request's tenant."""
        return self.lrs_picker()

    def _return_to_ua(
        self,
        response: Response,
        service_time: float = 0.0,
        shuffle_wait: float = 0.0,
        item_count: int = 0,
        generation: Optional[int] = None,
    ) -> None:
        if not self.alive or (generation is not None and generation != self.generation):
            return
        if response.request_id not in self.routing:
            self.stale_responses += 1
            return
        reply, context = self.routing.consume(response.request_id)
        ecalls_before = self.enclave.ecall_count
        try:
            keys = (
                self._keys_for(context.tenant) if self.runtime.config.encryption else None
            )
            transformed = protocol.ia_transform_response(
                self.runtime.provider, keys, self.runtime.config, context, response
            )
        except Exception as exc:
            self.transform_errors += 1
            reply(
                Response(
                    status=RETRYABLE_STATUS,
                    fields={"retryable": True, "error": type(exc).__name__},
                    request_id=response.request_id,
                )
            )
            return
        self.responses_processed += 1
        self.enclave.ocall()
        telemetry = self.runtime.telemetry
        if telemetry is not None:
            # The ia_outbound span closes when the UA records the
            # ia->ua hop inside *reply*.
            telemetry.tracer.annotate(
                response.request_id,
                instance=self.name,
                service_seconds=service_time,
                shuffle_wait_seconds=shuffle_wait,
                item_count=item_count,
                ecalls=self.enclave.ecall_count - ecalls_before,
                routing_pending=len(self.routing),
                **_sgx_attrs(self.runtime, self.enclave, len(self.routing)),
            )
        reply(transformed)

    def _keys_for(self, tenant: str) -> LayerKeys:
        """Resolve key material; single-tenant deployments ignore
        *tenant* (multi-tenant subclasses dispatch on it, §6.3)."""
        from repro.sgx.provisioning import IA_SECRET_K, IA_SECRET_SK

        return _layer_keys(self.enclave, IA_SECRET_SK, IA_SECRET_K)
