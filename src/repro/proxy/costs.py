"""Proxy service-time cost model, calibrated to the paper's hardware.

The evaluation runs each proxy instance on a 2-core 3.50 GHz NUC; "a
single instance of PProx can handle 250 requests per second using 4
cores" (i.e., one UA node + one IA node).  The per-leg costs below
compose the protocol steps of §4.2 from primitive operation costs and
are calibrated so that:

* the IA layer (the costlier one: it decrypts the temporary key /
  item, de-pseudonymizes up to 20 recommended items and re-encrypts
  the list) saturates just above 250 RPS per instance — Figure 8's
  scaling ladder;
* disabling encryption (m1 vs m2 in Figure 6) removes more latency
  than disabling SGX (m2 vs m3): "the added cost of encryption is
  slightly higher than the cost of using SGX enclaves";
* disabling item pseudonymization (m4) changes almost nothing:
  "the impact is negligible".

All constants are in seconds of core time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proxy.config import PProxConfig
from repro.sgx.costs import SgxCostModel

__all__ = ["ProxyCostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class ProxyCostModel:
    """Primitive operation costs composing each proxy leg."""

    #: HTTP header + JSON payload parsing / rewriting per leg (§5's
    #: in-enclave lightweight JSON parser).
    parse_seconds: float = 0.0004
    #: Forwarding work in the untrusted server part (epoll, queueing).
    forward_seconds: float = 0.0002
    #: One RSA private-key decryption (2048-bit on a mobile-grade i7).
    rsa_decrypt_seconds: float = 0.0032
    #: Deterministic AES-CTR of one fixed-size identifier.
    det_id_seconds: float = 0.00008
    #: Deterministic AES-CTR per item of a recommendation list.
    det_item_seconds: float = 0.00003
    #: Randomized AES-CTR of a padded 20-item list under ``k_u``.
    list_encrypt_seconds: float = 0.0005
    #: SGX transition + paging model.
    sgx: SgxCostModel = field(default_factory=SgxCostModel)

    # -- request path -------------------------------------------------

    def ua_request_leg(self, config: PProxConfig, pending: int, penalty: float = 1.0) -> float:
        """UA processing of a client request: decrypt u, pseudonymize."""
        cost = self.parse_seconds + self.forward_seconds
        if config.encryption:
            cost += self.rsa_decrypt_seconds + self.det_id_seconds
        return self._finish(cost, config, pending, penalty)

    def ia_request_leg(self, config: PProxConfig, pending: int, penalty: float = 1.0) -> float:
        """IA processing toward the LRS: decrypt item / k_u, pseudonymize."""
        cost = self.parse_seconds + self.forward_seconds
        if config.encryption:
            # get: decrypt enc(k_u, pkIA); post: decrypt enc(i, pkIA).
            cost += self.rsa_decrypt_seconds
            if config.item_pseudonymization:
                cost += self.det_id_seconds
        return self._finish(cost, config, pending, penalty)

    # -- response path ------------------------------------------------

    def ia_response_leg(
        self, config: PProxConfig, pending: int, items: int, penalty: float = 1.0
    ) -> float:
        """IA processing of an LRS response: de-pseudonymize + re-encrypt."""
        cost = self.parse_seconds + self.forward_seconds
        if config.encryption:
            if config.item_pseudonymization:
                cost += items * self.det_item_seconds
            cost += self.list_encrypt_seconds
        return self._finish(cost, config, pending, penalty)

    def ua_response_leg(self, config: PProxConfig, pending: int, penalty: float = 1.0) -> float:
        """UA forwarding of an (opaque) response back to the client."""
        cost = self.parse_seconds + self.forward_seconds
        if config.harden_client_hop:
            # Re-encryption of the response under the client's key.
            cost += self.list_encrypt_seconds
        return self._finish(cost, config, pending, penalty)

    # -- client-side --------------------------------------------------

    def client_encrypt_seconds(self, config: PProxConfig) -> float:
        """User-side library work before sending (public-key ops only)."""
        if not config.encryption:
            return 0.0
        # Two RSA public-key encryptions (cheap: e = 65537) + bookkeeping.
        return 0.0006

    def client_decrypt_seconds(self, config: PProxConfig) -> float:
        """User-side library work on a returned recommendation list."""
        if not config.encryption:
            return 0.0
        return 0.0003

    def _finish(self, cost: float, config: PProxConfig, pending: int, penalty: float) -> float:
        """Add SGX overhead, then apply any attack-induced slowdown."""
        if config.sgx:
            cost += self.sgx.request_overhead(pending)
        return cost * max(penalty, 1.0)


#: Default calibrated model.
DEFAULT_COSTS = ProxyCostModel()
