"""The PProx wire protocol: field transformations of §4.2.

Pure functions implementing the request/response lifecycles of
Figures 3 and 4.  Each function takes the crypto provider, the key
material visible at that stage, and a message, and returns the
transformed message — the layer instances in
:mod:`repro.proxy.layers` wire these into the simulated data plane.

Field naming on the JSON wire (paper protocol):

==========  =========================================================
``user``    client->UA: ``enc(u, pkUA)``; UA->IA and IA->LRS:
            ``det_enc(u, kUA)`` (base64)
``item``    client->IA (through UA, opaque to it): ``enc(i, pkIA)``;
            IA->LRS: ``det_enc(i, kIA)`` (or cleartext if item
            pseudonymization is disabled)
``tmpkey``  get only, client->IA: ``enc(k_u, pkIA)``
``items``   LRS->IA: recommendation list (pseudonymous identifiers)
``blob``    IA->client (through UA, opaque to it):
            ``enc(padded item list, k_u)``
==========  =========================================================

**Hardened client hop** (``PProxConfig.harden_client_hop``, an
extension beyond the paper): the client wraps its entire request in
``sealed = enc({fields, resp_key}, pkUA)`` and the UA re-encrypts the
response as ``sealed_resp = enc(fields, resp_key)``.  This closes the
wire-level variant of §6.1 case 2 in which an adversary holding
``skIA`` reads ``enc(i, pkIA)`` / ``enc(k_u, pkIA)`` directly off the
client->UA wire, where the client's address is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.envelope import (
    MAX_RECOMMENDATIONS,
    EnvelopeCodec,
    decode_identifier,
    encode_identifier,
    pad_item_list,
    strip_padding_items,
)
from repro.crypto.keys import LayerKeys, LayerPublicMaterial
from repro.crypto.provider import CryptoProvider
from repro.proxy.config import PProxConfig
from repro.rest.codec import JSON_WIRE_CODEC, WireCodec
from repro.rest.messages import Request, Response, Verb

__all__ = [
    "ClientMaterial",
    "CallKeys",
    "client_encode_post",
    "client_encode_get",
    "client_decode_response",
    "ua_transform_request",
    "ua_wrap_response",
    "ia_transform_request",
    "IaRequestContext",
    "ia_transform_response",
]


@dataclass(frozen=True)
class ClientMaterial:
    """What the user-side library knows: both layers' public keys."""

    ua: LayerPublicMaterial
    ia: LayerPublicMaterial


@dataclass(frozen=True)
class CallKeys:
    """Per-call keys the user-side library keeps until the response.

    ``temporary_key`` is the paper's ``k_u`` (gets only);
    ``response_key`` exists only in the hardened-hop extension.
    """

    temporary_key: Optional[bytes] = None
    response_key: Optional[bytes] = None


# ---------------------------------------------------------------- client


def _seal_for_ua(
    provider: CryptoProvider,
    material: ClientMaterial,
    fields: Dict[str, str],
    codec: WireCodec,
) -> Tuple[Dict[str, str], bytes]:
    """Wrap *fields* in the hardened-hop envelope under ``pkUA``."""
    response_key = provider.new_temporary_key()
    sealed = provider.asym_encrypt(material.ua, codec.pack_envelope(fields, response_key))
    return {"sealed": codec.wire_value(sealed)}, response_key


def client_encode_post(
    provider: CryptoProvider,
    material: ClientMaterial,
    config: PProxConfig,
    request: Request,
    *,
    codec: Optional[WireCodec] = None,
) -> Tuple[Request, CallKeys]:
    """User-side transformation of ``post(u, i[, p])`` (Figure 3)."""
    codec = codec or JSON_WIRE_CODEC
    if not config.encryption:
        return request, CallKeys()
    user = request.fields["user"]
    item = request.fields["item"]
    item_field = codec.wire_value(provider.asym_encrypt(material.ia, encode_identifier(item)))
    if config.harden_client_hop:
        # Inside the sealed envelope the user id needs no separate
        # asymmetric layer: the envelope itself is under pkUA.
        inner = dict(request.fields)
        inner["user"] = codec.wire_value(encode_identifier(user))
        inner["item"] = item_field
        sealed_fields, response_key = _seal_for_ua(provider, material, inner, codec)
        return (
            request.with_fields(user=None, item=None, payload=None, **sealed_fields),
            CallKeys(response_key=response_key),
        )
    encoded = request.with_fields(
        user=codec.wire_value(provider.asym_encrypt(material.ua, encode_identifier(user))),
        item=item_field,
    )
    return encoded, CallKeys()


def client_encode_get(
    provider: CryptoProvider,
    material: ClientMaterial,
    config: PProxConfig,
    request: Request,
    *,
    codec: Optional[WireCodec] = None,
) -> Tuple[Request, CallKeys]:
    """User-side transformation of ``get(u)`` (Figure 4).

    Generates the temporary key ``k_u`` the library must keep to
    decrypt the returned recommendation list.
    """
    codec = codec or JSON_WIRE_CODEC
    if not config.encryption:
        return request, CallKeys()
    user = request.fields["user"]
    temporary_key = provider.new_temporary_key()
    tmpkey_field = codec.wire_value(provider.asym_encrypt(material.ia, temporary_key))
    if config.harden_client_hop:
        inner = dict(request.fields)
        inner["user"] = codec.wire_value(encode_identifier(user))
        inner["tmpkey"] = tmpkey_field
        sealed_fields, response_key = _seal_for_ua(provider, material, inner, codec)
        return (
            request.with_fields(user=None, **sealed_fields),
            CallKeys(temporary_key=temporary_key, response_key=response_key),
        )
    encoded = request.with_fields(
        user=codec.wire_value(provider.asym_encrypt(material.ua, encode_identifier(user))),
        tmpkey=tmpkey_field,
    )
    return encoded, CallKeys(temporary_key=temporary_key)


def client_decode_response(
    provider: CryptoProvider,
    config: PProxConfig,
    response: Response,
    keys: CallKeys,
    *,
    codec: Optional[WireCodec] = None,
) -> List[str]:
    """Recover the cleartext recommendation list at the user side."""
    codec = codec or JSON_WIRE_CODEC
    if not response.ok:
        raise ValueError(f"LRS returned status {response.status}")
    if not config.encryption:
        return list(response.fields.get("items", []))
    fields = response.fields
    if config.harden_client_hop:
        if keys.response_key is None:
            raise ValueError("missing response key for a hardened response")
        sealed = codec.blob_value(fields["sealed_resp"])
        fields = codec.unpack_response_fields(
            provider.sym_decrypt(keys.response_key, sealed)
        )
    if "blob" not in fields:
        return []
    if keys.temporary_key is None:
        raise ValueError("missing temporary key for an encrypted get response")
    blob = codec.blob_value(fields["blob"])
    item_blobs = codec.unpack_items(provider.sym_decrypt(keys.temporary_key, blob))
    items = EnvelopeCodec.decode_identifiers(item_blobs)
    return strip_padding_items(items)


# ---------------------------------------------------------------- UA layer


def ua_transform_request(
    provider: CryptoProvider,
    keys: Optional[LayerKeys],
    config: PProxConfig,
    request: Request,
    layer_address: str,
    *,
    codec: Optional[WireCodec] = None,
) -> Tuple[Request, Optional[bytes]]:
    """UA leg: replace the user identity with ``det_enc(u, kUA)``.

    Returns the forwarded request plus (in the hardened mode) the
    client's response key, which the UA must keep to re-encrypt the
    response.  Also rewrites the request's source to the UA instance
    itself — the IA layer must never learn client addresses (§3).
    """
    codec = codec or JSON_WIRE_CODEC
    response_key: Optional[bytes] = None
    if not config.encryption:
        transformed = request
    elif config.harden_client_hop:
        inner, response_key = codec.unpack_envelope(
            provider.asym_decrypt(keys, codec.blob_value(request.fields["sealed"]))
        )
        user_plain = codec.blob_value(inner["user"])
        # The user pseudonym stays base64 text under every codec: it
        # is the identifier the LRS stores (paper §5).
        inner["user"] = EnvelopeCodec.wire_text(
            provider.pseudonymize(keys.symmetric_key, user_plain)
        )
        transformed = Request(
            verb=request.verb,
            fields=inner,
            request_id=request.request_id,
            client_address=request.client_address,
        )
    else:
        user_plain = provider.asym_decrypt(keys, codec.blob_value(request.fields["user"]))
        pseudonym = provider.pseudonymize(keys.symmetric_key, user_plain)
        transformed = request.with_fields(user=EnvelopeCodec.wire_text(pseudonym))
    # Hide the origin: downstream only sees the proxy as the source.
    forwarded = Request(
        verb=transformed.verb,
        fields=transformed.fields,
        request_id=transformed.request_id,
        client_address=layer_address,
    )
    return forwarded, response_key


def ua_wrap_response(
    provider: CryptoProvider,
    config: PProxConfig,
    response_key: Optional[bytes],
    response: Response,
    *,
    codec: Optional[WireCodec] = None,
) -> Response:
    """Hardened mode: re-encrypt the response fields for the client."""
    codec = codec or JSON_WIRE_CODEC
    if not config.harden_client_hop or response_key is None:
        return response
    sealed = provider.sym_encrypt(
        response_key, codec.pack_response_fields(response.fields)
    )
    return Response(
        status=response.status,
        fields={"sealed_resp": codec.wire_value(sealed)},
        request_id=response.request_id,
    )


# ---------------------------------------------------------------- IA layer


def _tenant_field(request: Request) -> str:
    """The request's (public) application identity."""
    tenant = request.fields.get("tenant")
    return tenant if isinstance(tenant, str) else "default"


@dataclass(frozen=True)
class IaRequestContext:
    """Per-request state the IA layer keeps for the response path."""

    verb: str
    temporary_key: Optional[bytes]
    #: Application identity (multi-tenant deployments, §6.3).
    tenant: str = "default"


def ia_transform_request(
    provider: CryptoProvider,
    keys: Optional[LayerKeys],
    config: PProxConfig,
    request: Request,
    layer_address: str,
    *,
    codec: Optional[WireCodec] = None,
) -> Tuple[Request, IaRequestContext]:
    """IA leg: decrypt item / temporary key; pseudonymize items.

    The outgoing request carries only pseudonymous identifiers; the
    temporary key (for gets) stays inside the enclave, recorded in the
    returned context.
    """
    codec = codec or JSON_WIRE_CODEC
    if not config.encryption:
        forwarded = Request(
            verb=request.verb,
            fields=request.fields,
            request_id=request.request_id,
            client_address=layer_address,
        )
        return forwarded, IaRequestContext(
            verb=request.verb, temporary_key=None, tenant=_tenant_field(request)
        )

    if request.verb == Verb.POST:
        item_plain = provider.asym_decrypt(keys, codec.blob_value(request.fields["item"]))
        if config.item_pseudonymization:
            # Like the user pseudonym, the item pseudonym is base64
            # text under every codec — it continues into the LRS store.
            item_field = EnvelopeCodec.wire_text(
                provider.pseudonymize(keys.symmetric_key, item_plain)
            )
        else:
            # §6.3: algorithms needing cleartext items can disable
            # pseudonymization at a privacy cost.
            item_field = decode_identifier(item_plain)
        transformed = request.with_fields(item=item_field)
        context = IaRequestContext(
            verb=Verb.POST, temporary_key=None, tenant=_tenant_field(request)
        )
    else:
        temporary_key = provider.asym_decrypt(keys, codec.blob_value(request.fields["tmpkey"]))
        transformed = request.with_fields(tmpkey=None)
        context = IaRequestContext(
            verb=Verb.GET, temporary_key=temporary_key, tenant=_tenant_field(request)
        )

    forwarded = Request(
        verb=transformed.verb,
        fields=transformed.fields,
        request_id=transformed.request_id,
        client_address=layer_address,
    )
    return forwarded, context


def ia_transform_response(
    provider: CryptoProvider,
    keys: Optional[LayerKeys],
    config: PProxConfig,
    context: IaRequestContext,
    response: Response,
    *,
    previous: Optional[LayerKeys] = None,
    on_previous_use: Optional[Callable[[], None]] = None,
    codec: Optional[WireCodec] = None,
) -> Response:
    """IA response leg: de-pseudonymize, pad, re-encrypt under ``k_u``.

    During a dual-epoch window *previous* carries the outgoing epoch's
    keys: the LRS may still return pseudonyms minted under them while
    the background re-encryption is catching up, so each entry falls
    back to the previous symmetric key when the active one cannot
    resolve it.  *on_previous_use* fires once per response that needed
    the fallback — the rotation coordinator uses it to know the old
    epoch is still live and must not be retired yet.
    """
    codec = codec or JSON_WIRE_CODEC
    if not config.encryption or context.verb == Verb.POST or not response.ok:
        return response
    raw_items = response.fields.get("items", [])
    if config.item_pseudonymization and previous is not None:
        cleartext = []
        fell_back = False
        for item in raw_items:
            pseudonym = EnvelopeCodec.wire_blob(item)
            try:
                cleartext.append(
                    decode_identifier(
                        provider.depseudonymize(keys.symmetric_key, pseudonym)
                    )
                )
            except Exception:
                cleartext.append(
                    decode_identifier(
                        provider.depseudonymize(previous.symmetric_key, pseudonym)
                    )
                )
                fell_back = True
        if fell_back and on_previous_use is not None:
            on_previous_use()
    elif config.item_pseudonymization:
        # One batched provider call for the whole 20-entry list: lets
        # providers amortize per-call overhead and hit the pseudonym
        # memo in a tight loop.
        pseudonyms = [EnvelopeCodec.wire_blob(item) for item in raw_items]
        cleartext = [
            decode_identifier(identifier)
            for identifier in provider.depseudonymize_many(keys.symmetric_key, pseudonyms)
        ]
    else:
        cleartext = list(raw_items)
    padded = pad_item_list(cleartext[:MAX_RECOMMENDATIONS])
    # Fixed-size encode every entry so the blob length never depends
    # on identifier lengths (§4.3's constant-size requirement).
    blob = provider.sym_encrypt(
        context.temporary_key,
        codec.pack_items(EnvelopeCodec.encode_identifiers(padded)),
    )
    return Response(
        status=response.status,
        fields={"blob": codec.wire_value(blob)},
        request_id=response.request_id,
    )
