"""Assembly of the complete PProx proxy service.

Builds the two proxy layers (key generation, enclave creation,
attestation, provisioning), wires them to each other and to the LRS
through load balancers, and exposes the operations a deployment
needs: entry-point selection for clients, horizontal scaling, and
breach response (key rotation).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.crypto.keys import KeyFactory, LayerKeys
from repro.crypto.provider import CryptoProvider, SimCryptoProvider
from repro.overload.policy import OverloadPolicy
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.proxy.layers import ItemAnonymizer, ProxyRuntime, UserAnonymizer
from repro.proxy.protocol import ClientMaterial
from repro.rest.codec import WireCodec, resolve_codec
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.provisioning import KeyProvisioner
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import LoadBalancer, make_policy
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.telemetry.types import TelemetryLike

__all__ = [
    "PProxService",
    "build_pprox",
    "build_service",
    "UA_CODE_IDENTITY",
    "IA_CODE_IDENTITY",
]

#: Code identities measured into the enclaves of each layer.
UA_CODE_IDENTITY = "pprox-user-anonymizer-v1.0"
IA_CODE_IDENTITY = "pprox-item-anonymizer-v1.0"

# RSA key generation in pure Python is slow (~1 s per keypair); cache
# deterministic keypairs across experiment configurations of a run.
_KEYPAIR_CACHE: Dict[Tuple[int, int, str], LayerKeys] = {}


def _cached_layer_keys(factory: KeyFactory, seed: int, bits: int, layer: str) -> LayerKeys:
    cache_key = (seed, bits, layer)
    keys = _KEYPAIR_CACHE.get(cache_key)
    if keys is None:
        keys = factory.layer_keys()
        _KEYPAIR_CACHE[cache_key] = keys
    return keys


@dataclass
class PProxService:
    """A deployed two-layer proxy service."""

    runtime: ProxyRuntime
    provisioner: KeyProvisioner
    attestation: AttestationService
    ua_balancer: LoadBalancer
    ia_balancer: LoadBalancer
    lrs_picker: Callable[[], object]
    ua_instances: List[UserAnonymizer] = field(default_factory=list)
    ia_instances: List[ItemAnonymizer] = field(default_factory=list)
    #: Instance restarts performed (failover bookkeeping).
    restarts: int = 0

    @property
    def config(self) -> PProxConfig:
        """The active configuration."""
        return self.runtime.config

    @property
    def client_material(self) -> ClientMaterial:
        """Public keys the user-side library embeds (§4.1)."""
        return ClientMaterial(
            ua=self.provisioner.layer_keys["UA"].public_material,
            ia=self.provisioner.layer_keys["IA"].public_material,
        )

    @property
    def wire_epochs(self) -> Optional[Dict[str, int]]:
        """Per-layer active epoch ids for client request stamping.

        ``None`` until the first online rotation: legacy deployments
        stamp nothing and stay byte-identical on the wire.
        """
        if not self.provisioner.epochs_enabled:
            return None
        return {
            "UA": self.provisioner.active_epoch("UA"),
            "IA": self.provisioner.active_epoch("IA"),
        }

    def entry(self) -> UserAnonymizer:
        """Pick the UA instance serving the next client request."""
        return self.ua_balancer.pick()

    def layer_instances(
        self, layer: str
    ) -> Union[List[UserAnonymizer], List[ItemAnonymizer]]:
        """The instance list of *layer* (``"UA"`` or ``"IA"``)."""
        if layer == "UA":
            return self.ua_instances
        if layer == "IA":
            return self.ia_instances
        raise ValueError(f"unknown layer {layer!r}; expected 'UA' or 'IA'")

    def all_enclaves(self) -> List[Enclave]:
        """Every enclave of both layers (for the breach detector)."""
        return [inst.enclave for inst in self.ua_instances] + [
            inst.enclave for inst in self.ia_instances
        ]

    # -- horizontal scaling (§5) ---------------------------------------

    def scale_ua(self) -> UserAnonymizer:
        """Add one UA instance: new enclave, attest, provision, join LB."""
        index = len(self.ua_instances)
        enclave = Enclave(
            name=f"ua-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            host_node=f"node-ua-{index}",
        )
        self.provisioner.provision("UA", enclave)
        instance = UserAnonymizer(
            name=f"pprox-ua-{index}",
            runtime=self.runtime,
            enclave=enclave,
            ia_balancer=self.ia_balancer,
        )
        self.ua_instances.append(instance)
        self.ua_balancer.add(instance)
        self.runtime.network.register_role(instance.address, "ua")
        return instance

    def scale_ia(self) -> ItemAnonymizer:
        """Add one IA instance: new enclave, attest, provision, join LB."""
        index = len(self.ia_instances)
        enclave = Enclave(
            name=f"ia-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
            host_node=f"node-ia-{index}",
        )
        self.provisioner.provision("IA", enclave)
        instance = ItemAnonymizer(
            name=f"pprox-ia-{index}",
            runtime=self.runtime,
            enclave=enclave,
            lrs_picker=self.lrs_picker,
        )
        self.ia_instances.append(instance)
        self.ia_balancer.add(instance)
        self.runtime.network.register_role(instance.address, "ia")
        return instance

    # -- failure recovery ----------------------------------------------

    def restart_instance(
        self, instance: Union[UserAnonymizer, ItemAnonymizer]
    ) -> Union[UserAnonymizer, ItemAnonymizer]:
        """Bring a crashed instance back into service.

        Models the Kubernetes restart of a failed enclave pod: a fresh
        enclave is created, measured, remotely attested and
        re-provisioned with the layer's keys via the *same*
        :class:`KeyProvisioner` flow as initial deployment — all
        *before* the instance flips alive again, so a health probe can
        never readmit an instance whose enclave has not completed
        attestation.  Readmission to the balancer is the health
        monitor's job (or the caller's, via ``readmit``).
        """
        if instance in self.ua_instances:
            layer, identity = "UA", UA_CODE_IDENTITY
        elif instance in self.ia_instances:
            layer, identity = "IA", IA_CODE_IDENTITY
        else:
            raise ValueError(f"instance {instance.name!r} is not part of this service")
        next_generation = instance.generation + 1
        enclave = Enclave(
            name=f"{instance.name}-enclave-g{next_generation}",
            measurement=EnclaveMeasurement.of_code(identity),
            host_node=f"node-{instance.name}-g{next_generation}",
        )
        self.provisioner.provision(layer, enclave)
        instance.restart(enclave)
        self.restarts += 1
        return instance

    # -- breach response (footnote 1) ----------------------------------

    def rotate_layer(self, layer: str, factory: KeyFactory) -> LayerKeys:
        """Generate fresh keys for *layer* and re-provision its enclaves.

        Returns the new key material (the user-side library must be
        updated with the new public half).
        """
        new_keys = factory.layer_keys()
        enclaves = [
            inst.enclave
            for inst in (self.ua_instances if layer == "UA" else self.ia_instances)
        ]
        self.provisioner.rotate_layer(layer, new_keys, enclaves)
        return new_keys

    # -- online rotation (epochs) --------------------------------------

    def announce_epoch(self, layer: str, new_keys: LayerKeys) -> Tuple[int, int]:
        """Open a dual-epoch window on *layer*'s alive enclaves.

        Dead instances are deliberately skipped — their enclaves are
        rebuilt from scratch at restart (which provisions the current
        generation), and the rotation coordinator's coverage pass heals
        any alive enclave that missed the flip.  Returns
        ``(old_epoch, new_epoch)``.
        """
        enclaves = [
            instance.enclave
            for instance in self.layer_instances(layer)
            if instance.alive
        ]
        return self.provisioner.announce_epoch(layer, new_keys, enclaves)

    def retire_epoch(self, layer: str) -> int:
        """Close *layer*'s window: wipe the previous-epoch secrets from
        every alive enclave.  Returns the retired epoch id."""
        enclaves = [
            instance.enclave
            for instance in self.layer_instances(layer)
            if instance.alive
        ]
        return self.provisioner.retire_epoch(layer, enclaves)

    def breach_response(self, layer: str, factory: KeyFactory, lrs_store=None) -> LayerKeys:
        """Full breach response (footnote 1, option 1).

        Rotates *layer*'s keys AND drops the LRS database content: the
        stored pseudonyms were produced under the retired keys and can
        no longer be resolved by the fresh enclaves (the paper's other
        options — offline re-encryption or proxy re-encryption — trade
        data retention for more machinery).
        """
        new_keys = self.rotate_layer(layer, factory)
        if lrs_store is not None:
            lrs_store.clear()
        return new_keys


def build_service(
    *,
    loop: EventLoop,
    network: Network,
    rng: RngRegistry,
    config: PProxConfig,
    lrs_picker: Callable[[], object],
    provider: Optional[CryptoProvider] = None,
    costs: ProxyCostModel = DEFAULT_COSTS,
    rsa_bits: int = 1024,
    telemetry: Optional[TelemetryLike] = None,
    overload: Optional[OverloadPolicy] = None,
    codec: Optional[Union[str, WireCodec]] = None,
) -> PProxService:
    """Deploy a PProx service according to *config* (keyword-only core).

    Performs the full bootstrap: layer key generation by the client
    application, enclave creation on dedicated nodes, attestation and
    provisioning, and load-balancer wiring.  *lrs_picker* returns the
    LRS backend (stub or Harness frontend) for each outgoing request.

    Prefer :meth:`repro.context.Deployment.build`, which bundles the
    simulation substrate into a :class:`repro.context.SimContext` and
    also hands out matching clients.
    """
    if provider is None:
        provider = SimCryptoProvider(rng_bytes=rng.bytes_fn("provider"))

    factory = KeyFactory(
        rsa_bits=rsa_bits,
        rng_int=rng.int_fn("keygen"),
        rng_bytes=rng.bytes_fn("keygen-bytes"),
    )
    ua_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "UA")
    ia_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "IA")

    attestation = AttestationService(rng_bytes=rng.bytes_fn("attestation"))
    provisioner = KeyProvisioner(
        attestation=attestation,
        expected_measurements={
            "UA": EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            "IA": EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
        },
        layer_keys={"UA": ua_keys, "IA": ia_keys},
        rng_bytes=rng.bytes_fn("provisioning"),
    )

    runtime = ProxyRuntime(
        loop=loop,
        network=network,
        rng=rng.stream("proxy"),
        provider=provider,
        config=config,
        costs=costs,
        telemetry=telemetry,
        overload=overload,
        codec=resolve_codec(codec),
        # Kept callable so batch sealing tracks live IA key rotation.
        ia_public=lambda: provisioner.layer_keys["IA"].public_material,
    )
    service = PProxService(
        runtime=runtime,
        provisioner=provisioner,
        attestation=attestation,
        ua_balancer=LoadBalancer(
            name="client->ua", policy=make_policy(config.balancing, rng.stream("lb-ua"))
        ),
        ia_balancer=LoadBalancer(
            name="ua->ia", policy=make_policy(config.balancing, rng.stream("lb-ia"))
        ),
        lrs_picker=lrs_picker,
    )
    for _ in range(config.ia_instances):
        service.scale_ia()
    for _ in range(config.ua_instances):
        service.scale_ua()
    return service


def _looks_like_context(candidate: Any) -> bool:
    """Duck-check for a :class:`repro.context.SimContext`.

    Structural on purpose: importing ``repro.context`` here would close
    an import cycle (context imports this module for the assembly
    core).  An :class:`EventLoop` has none of these attributes, so the
    old positional bundle can never be mistaken for a context.
    """
    return all(
        hasattr(candidate, attr) for attr in ("loop", "network", "rng", "costs")
    )


_OLD_BUILD_PARAMS = (
    "loop", "network", "rng", "config", "lrs_picker",
    "provider", "costs", "rsa_bits", "telemetry",
)


def build_pprox(*args: Any, **kwargs: Any) -> PProxService:
    """Deploy a PProx service — context-based or legacy signature.

    New form (preferred)::

        build_pprox(ctx, config, lrs_picker, rsa_bits=1024)

    where *ctx* is a :class:`repro.context.SimContext` carrying the
    loop, network, RNG registry, crypto provider, cost model and
    telemetry hub.  The legacy positional bundle ::

        build_pprox(loop, network, rng, config, lrs_picker,
                    provider=None, costs=DEFAULT_COSTS,
                    rsa_bits=1024, telemetry=None)

    still works but emits :class:`DeprecationWarning`; both produce
    identical deployments for identical inputs.
    """
    first = args[0] if args else kwargs.get("ctx")
    if first is not None and _looks_like_context(first):
        merged: Dict[str, Any] = dict(zip(("ctx", "config", "lrs_picker"), args))
        duplicated = set(merged) & set(kwargs)
        if duplicated:
            raise TypeError(f"build_pprox got multiple values for {sorted(duplicated)}")
        merged.update(kwargs)
        ctx = merged.pop("ctx")
        config = merged.pop("config")
        lrs_picker = merged.pop("lrs_picker")
        rsa_bits = merged.pop("rsa_bits", 1024)
        overload = merged.pop("overload", None)
        codec = merged.pop("codec", getattr(ctx, "codec", None))
        if merged:
            raise TypeError(
                "unexpected arguments for context-based build_pprox: "
                f"{sorted(merged)} (override provider/costs/telemetry on the context)"
            )
        return build_service(
            loop=ctx.loop,
            network=ctx.network,
            rng=ctx.rng,
            config=config,
            lrs_picker=lrs_picker,
            provider=ctx.provider,
            costs=ctx.costs,
            rsa_bits=rsa_bits,
            telemetry=ctx.telemetry,
            overload=overload,
            codec=codec,
        )
    warnings.warn(
        "build_pprox(loop, network, rng, ...) is deprecated; pass a "
        "repro.context.SimContext (or use repro.context.Deployment.build)",
        DeprecationWarning,
        stacklevel=2,
    )
    legacy: Dict[str, Any] = dict(zip(_OLD_BUILD_PARAMS, args))
    overlap = set(legacy) & set(kwargs)
    if overlap:
        raise TypeError(f"build_pprox got multiple values for {sorted(overlap)}")
    legacy.update(kwargs)
    return build_service(**legacy)
