"""Assembly of the complete PProx proxy service.

Builds the two proxy layers (key generation, enclave creation,
attestation, provisioning), wires them to each other and to the LRS
through load balancers, and exposes the operations a deployment
needs: entry-point selection for clients, horizontal scaling, and
breach response (key rotation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.keys import KeyFactory, LayerKeys
from repro.crypto.provider import CryptoProvider, SimCryptoProvider
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.proxy.layers import ItemAnonymizer, ProxyRuntime, UserAnonymizer
from repro.proxy.protocol import ClientMaterial
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.provisioning import KeyProvisioner
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import LoadBalancer, make_policy
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry

__all__ = ["PProxService", "build_pprox", "UA_CODE_IDENTITY", "IA_CODE_IDENTITY"]

#: Code identities measured into the enclaves of each layer.
UA_CODE_IDENTITY = "pprox-user-anonymizer-v1.0"
IA_CODE_IDENTITY = "pprox-item-anonymizer-v1.0"

# RSA key generation in pure Python is slow (~1 s per keypair); cache
# deterministic keypairs across experiment configurations of a run.
_KEYPAIR_CACHE: Dict[Tuple[int, int, str], LayerKeys] = {}


def _cached_layer_keys(factory: KeyFactory, seed: int, bits: int, layer: str) -> LayerKeys:
    cache_key = (seed, bits, layer)
    keys = _KEYPAIR_CACHE.get(cache_key)
    if keys is None:
        keys = factory.layer_keys()
        _KEYPAIR_CACHE[cache_key] = keys
    return keys


@dataclass
class PProxService:
    """A deployed two-layer proxy service."""

    runtime: ProxyRuntime
    provisioner: KeyProvisioner
    attestation: AttestationService
    ua_instances: List[UserAnonymizer] = field(default_factory=list)
    ia_instances: List[ItemAnonymizer] = field(default_factory=list)
    ua_balancer: LoadBalancer = None  # type: ignore[assignment]
    ia_balancer: LoadBalancer = None  # type: ignore[assignment]
    lrs_picker: Callable[[], object] = None  # type: ignore[assignment]

    @property
    def config(self) -> PProxConfig:
        """The active configuration."""
        return self.runtime.config

    @property
    def client_material(self) -> ClientMaterial:
        """Public keys the user-side library embeds (§4.1)."""
        return ClientMaterial(
            ua=self.provisioner.layer_keys["UA"].public_material,
            ia=self.provisioner.layer_keys["IA"].public_material,
        )

    def entry(self) -> UserAnonymizer:
        """Pick the UA instance serving the next client request."""
        return self.ua_balancer.pick()

    def all_enclaves(self) -> List[Enclave]:
        """Every enclave of both layers (for the breach detector)."""
        return [inst.enclave for inst in self.ua_instances] + [
            inst.enclave for inst in self.ia_instances
        ]

    # -- horizontal scaling (§5) ---------------------------------------

    def scale_ua(self) -> UserAnonymizer:
        """Add one UA instance: new enclave, attest, provision, join LB."""
        index = len(self.ua_instances)
        enclave = Enclave(
            name=f"ua-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            host_node=f"node-ua-{index}",
        )
        self.provisioner.provision("UA", enclave)
        instance = UserAnonymizer(
            name=f"pprox-ua-{index}",
            runtime=self.runtime,
            enclave=enclave,
            ia_balancer=self.ia_balancer,
        )
        self.ua_instances.append(instance)
        self.ua_balancer.add(instance)
        self.runtime.network.register_role(instance.address, "ua")
        return instance

    def scale_ia(self) -> ItemAnonymizer:
        """Add one IA instance: new enclave, attest, provision, join LB."""
        index = len(self.ia_instances)
        enclave = Enclave(
            name=f"ia-enclave-{index}",
            measurement=EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
            host_node=f"node-ia-{index}",
        )
        self.provisioner.provision("IA", enclave)
        instance = ItemAnonymizer(
            name=f"pprox-ia-{index}",
            runtime=self.runtime,
            enclave=enclave,
            lrs_picker=self.lrs_picker,
        )
        self.ia_instances.append(instance)
        self.ia_balancer.add(instance)
        self.runtime.network.register_role(instance.address, "ia")
        return instance

    # -- breach response (footnote 1) ----------------------------------

    def rotate_layer(self, layer: str, factory: KeyFactory) -> LayerKeys:
        """Generate fresh keys for *layer* and re-provision its enclaves.

        Returns the new key material (the user-side library must be
        updated with the new public half).
        """
        new_keys = factory.layer_keys()
        enclaves = [
            inst.enclave
            for inst in (self.ua_instances if layer == "UA" else self.ia_instances)
        ]
        self.provisioner.rotate_layer(layer, new_keys, enclaves)
        return new_keys

    def breach_response(self, layer: str, factory: KeyFactory, lrs_store=None) -> LayerKeys:
        """Full breach response (footnote 1, option 1).

        Rotates *layer*'s keys AND drops the LRS database content: the
        stored pseudonyms were produced under the retired keys and can
        no longer be resolved by the fresh enclaves (the paper's other
        options — offline re-encryption or proxy re-encryption — trade
        data retention for more machinery).
        """
        new_keys = self.rotate_layer(layer, factory)
        if lrs_store is not None:
            lrs_store.clear()
        return new_keys


def build_pprox(
    loop: EventLoop,
    network: Network,
    rng: RngRegistry,
    config: PProxConfig,
    lrs_picker: Callable[[], object],
    provider: Optional[CryptoProvider] = None,
    costs: ProxyCostModel = DEFAULT_COSTS,
    rsa_bits: int = 1024,
    telemetry: Optional[object] = None,
) -> PProxService:
    """Deploy a PProx service according to *config*.

    Performs the full bootstrap: layer key generation by the client
    application, enclave creation on dedicated nodes, attestation and
    provisioning, and load-balancer wiring.  *lrs_picker* returns the
    LRS backend (stub or Harness frontend) for each outgoing request.
    """
    if provider is None:
        provider = SimCryptoProvider(rng_bytes=rng.bytes_fn("provider"))

    factory = KeyFactory(
        rsa_bits=rsa_bits,
        rng_int=rng.int_fn("keygen"),
        rng_bytes=rng.bytes_fn("keygen-bytes"),
    )
    ua_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "UA")
    ia_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "IA")

    attestation = AttestationService(rng_bytes=rng.bytes_fn("attestation"))
    provisioner = KeyProvisioner(
        attestation=attestation,
        expected_measurements={
            "UA": EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            "IA": EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
        },
        layer_keys={"UA": ua_keys, "IA": ia_keys},
        rng_bytes=rng.bytes_fn("provisioning"),
    )

    runtime = ProxyRuntime(
        loop=loop,
        network=network,
        rng=rng.stream("proxy"),
        provider=provider,
        config=config,
        costs=costs,
        telemetry=telemetry,
    )
    service = PProxService(
        runtime=runtime,
        provisioner=provisioner,
        attestation=attestation,
        ua_balancer=LoadBalancer(
            name="client->ua", policy=make_policy(config.balancing, rng.stream("lb-ua"))
        ),
        ia_balancer=LoadBalancer(
            name="ua->ia", policy=make_policy(config.balancing, rng.stream("lb-ia"))
        ),
        lrs_picker=lrs_picker,
    )
    for _ in range(config.ia_instances):
        service.scale_ia()
    for _ in range(config.ua_instances):
        service.scale_ua()
    return service
