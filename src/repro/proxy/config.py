"""PProx proxy-service configuration.

One :class:`PProxConfig` captures everything Table 2 and Table 3 vary:
whether encryption and SGX are enabled, whether item identifiers are
pseudonymized (§6.3 allows disabling this), the shuffling buffer size
``S`` and its flush timer, and the number of proxy instances per
layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PProxConfig"]


@dataclass(frozen=True)
class PProxConfig:
    """Feature switches and sizing of a PProx deployment."""

    #: Enable the protocol's encryption (m1 disables it entirely).
    encryption: bool = True
    #: Pseudonymize item identifiers (m4 = encryption without this).
    item_pseudonymization: bool = True
    #: Run proxy data processing inside SGX enclaves (charges costs).
    sgx: bool = True
    #: Shuffling buffer size; 0 disables shuffling.
    shuffle_size: int = 10
    #: Flush a partially-filled shuffle buffer after this many seconds.
    shuffle_timeout: float = 0.25
    #: Number of proxy instances (enclaves/nodes) in the UA layer.
    ua_instances: int = 1
    #: Number of proxy instances (enclaves/nodes) in the IA layer.
    ia_instances: int = 1
    #: Load-balancing policy between layers: random | round-robin |
    #: least-pending (kube-proxy iptables default is random).
    balancing: str = "random"
    #: Extension beyond the paper: seal the entire client<->UA hop
    #: under pkUA and re-encrypt responses under a client-chosen key.
    #: Closes the wire-level variant of §6.1 case 2 found during this
    #: reproduction (an adversary holding skIA who also observes the
    #: client->UA wire can decrypt the item field / temporary key
    #: right next to the client's address).  Costs one extra symmetric
    #: pass on the UA response leg.
    harden_client_hop: bool = False

    def __post_init__(self) -> None:
        if self.shuffle_size < 0:
            raise ValueError("shuffle_size must be >= 0")
        if self.ua_instances < 1 or self.ia_instances < 1:
            raise ValueError("each proxy layer needs at least one instance")
        if self.item_pseudonymization and not self.encryption:
            # Pseudonymization is part of the encryption machinery; the
            # m1 configuration disables both.
            object.__setattr__(self, "item_pseudonymization", False)
        if self.harden_client_hop and not self.encryption:
            object.__setattr__(self, "harden_client_hop", False)

    @property
    def shuffling(self) -> bool:
        """True when request/response shuffling is active."""
        return self.shuffle_size > 0

    @property
    def proxy_node_count(self) -> int:
        """Total nodes dedicated to the proxy service."""
        return self.ua_instances + self.ia_instances

    def describe(self) -> str:
        """One-line summary in the style of Table 2's columns."""
        enc = "*" if (self.encryption and not self.item_pseudonymization) else (
            "yes" if self.encryption else "no"
        )
        shuffle = str(self.shuffle_size) if self.shuffling else "off"
        return (
            f"enc={enc} sgx={'yes' if self.sgx else 'no'} S={shuffle}"
            f" UA={self.ua_instances} IA={self.ia_instances}"
        )
