"""Request/response shuffling buffer (paper §4.3, Figure 5).

"Incoming requests are buffered until S requests are received, or
until a timer expires, and then sent in random order to the next
stage."  The UA layer shuffles requests on the way to the IA layer;
the IA layer shuffles responses on the way back.  Each proxy instance
owns its own buffers, which is why over-provisioned deployments see
shuffle latency grow (§8.1.2): per-instance traffic drops and buffers
fill more slowly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.simnet.clock import EventHandle, EventLoop

__all__ = ["ShuffleBuffer"]


@dataclass
class ShuffleBuffer:
    """Buffers entries and releases them in randomized batches.

    Telemetry hooks: ``on_flush(size, timer_fired)`` fires once per
    flush; ``last_flush_size`` is the effective ``S`` of the most
    recent batch (the live privacy-health signal); ``last_wait`` holds
    the buffered entry's wait time during each ``release`` callback so
    the release path can attribute shuffle wait vs. processing time.
    """

    loop: EventLoop
    rng: random.Random
    size: int
    timeout: float
    release: Callable[[Any], None]
    name: str = "shuffle"
    _pending: List[Any] = field(default_factory=list)
    _enqueued_at: List[float] = field(default_factory=list)
    _timer: Optional[EventHandle] = None
    flushes: int = 0
    timer_flushes: int = 0
    entries_buffered: int = 0
    drains: int = 0
    entries_drained: int = 0
    last_flush_size: Optional[int] = None
    #: Smallest batch ever *released to the wire* by this buffer (the
    #: worst effective ``S`` over its lifetime).  Crash drains are
    #: excluded — a drained batch is discarded, never released, so it
    #: cannot thin what an adversary observes.
    min_flush_size: Optional[int] = None
    #: Wait time of the entry currently being released (valid only
    #: inside the ``release`` callback).
    last_wait: float = 0.0
    #: Optional telemetry hook: called as ``on_flush(size, timer_fired)``.
    on_flush: Optional[Callable[[int, bool], None]] = None
    #: Batch-envelope mode: when set, a flush hands the whole shuffled
    #: batch — a list of ``(entry, enqueued_at)`` pairs — to this hook
    #: instead of releasing entries one at a time, so the owner can
    #: amortize work (one sealed envelope per flush) across the batch.
    release_batch: Optional[Callable[[List[Any]], None]] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("shuffle size must be >= 1; use size 1 for pass-through")
        if self.timeout <= 0:
            raise ValueError("shuffle timeout must be positive")

    def add(self, entry: Any) -> None:
        """Buffer *entry*; flush if the batch is full."""
        self._pending.append(entry)
        self._enqueued_at.append(self.loop.now)
        self.entries_buffered += 1
        if len(self._pending) >= self.size:
            self._flush(timer_fired=False)
            return
        if self._timer is None:
            self._timer = self.loop.schedule(self.timeout, self._on_timer)

    @property
    def pending(self) -> int:
        """Entries currently buffered."""
        return len(self._pending)

    def time_to_flush(self, now: float) -> Optional[float]:
        """Seconds until the pending batch is timer-flushed, if armed."""
        if self._timer is None or self._timer.cancelled:
            return None
        return max(0.0, self._timer.time - now)

    def drain(self) -> int:
        """Discard the in-flight batch without releasing it.

        Called when the owning instance dies: buffered requests are
        lost (clients recover via timeout + retry), the armed timer is
        cancelled so no flush fires on a dead instance, and
        ``last_flush_size`` drops to 0 so the anonymity-set gauge
        reflects the drained batch.  Returns the number of entries
        discarded.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        dropped = len(self._pending)
        self._pending, self._enqueued_at = [], []
        self.drains += 1
        self.entries_drained += dropped
        self.last_flush_size = 0
        return dropped

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self._flush(timer_fired=True)

    def _flush(self, timer_fired: bool) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = list(zip(self._pending, self._enqueued_at))
        self._pending, self._enqueued_at = [], []
        self.rng.shuffle(batch)
        self.flushes += 1
        if timer_fired:
            self.timer_flushes += 1
        self.last_flush_size = len(batch)
        if self.min_flush_size is None or len(batch) < self.min_flush_size:
            self.min_flush_size = len(batch)
        if self.on_flush is not None:
            self.on_flush(len(batch), timer_fired)
        if self.release_batch is not None:
            self.release_batch(batch)
            return
        now = self.loop.now
        for entry, enqueued_at in batch:
            self.last_wait = now - enqueued_at
            self.release(entry)
        self.last_wait = 0.0
