"""Request/response shuffling buffer (paper §4.3, Figure 5).

"Incoming requests are buffered until S requests are received, or
until a timer expires, and then sent in random order to the next
stage."  The UA layer shuffles requests on the way to the IA layer;
the IA layer shuffles responses on the way back.  Each proxy instance
owns its own buffers, which is why over-provisioned deployments see
shuffle latency grow (§8.1.2): per-instance traffic drops and buffers
fill more slowly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.simnet.clock import EventHandle, EventLoop

__all__ = ["ShuffleBuffer"]


@dataclass
class ShuffleBuffer:
    """Buffers entries and releases them in randomized batches."""

    loop: EventLoop
    rng: random.Random
    size: int
    timeout: float
    release: Callable[[Any], None]
    name: str = "shuffle"
    _pending: List[Any] = field(default_factory=list)
    _timer: Optional[EventHandle] = None
    flushes: int = 0
    timer_flushes: int = 0
    entries_buffered: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("shuffle size must be >= 1; use size 1 for pass-through")
        if self.timeout <= 0:
            raise ValueError("shuffle timeout must be positive")

    def add(self, entry: Any) -> None:
        """Buffer *entry*; flush if the batch is full."""
        self._pending.append(entry)
        self.entries_buffered += 1
        if len(self._pending) >= self.size:
            self._flush(timer_fired=False)
            return
        if self._timer is None:
            self._timer = self.loop.schedule(self.timeout, self._on_timer)

    @property
    def pending(self) -> int:
        """Entries currently buffered."""
        return len(self._pending)

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self._flush(timer_fired=True)

    def _flush(self, timer_fired: bool) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self.rng.shuffle(batch)
        self.flushes += 1
        if timer_fired:
            self.timer_flushes += 1
        for entry in batch:
            self.release(entry)
