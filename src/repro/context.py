"""Deployment context API: one bundle instead of six loose arguments.

Every experiment used to thread ``loop, network, rng, provider, costs,
telemetry`` through ``build_pprox`` and again through ``PProxClient``;
each new cross-cutting concern (telemetry yesterday, fault injection
today) widened every call site.  :class:`SimContext` bundles the
simulation substrate once, and :class:`Deployment` is the keyword-only
facade that assembles a service — and hands out clients, health
monitors and fault controllers — from it.

The old signatures still work (with :class:`DeprecationWarning`) and
produce byte-identical deployments; see ``tests/test_context_api.py``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Union

from repro.client.library import PProxClient
from repro.crypto.provider import CryptoProvider, SimCryptoProvider
from repro.overload.policy import OverloadPolicy
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.proxy.service import PProxService, build_service
from repro.rest.codec import WireCodec, resolve_codec
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.telemetry.types import TelemetryLike

__all__ = ["SimContext", "Deployment"]


@dataclass
class SimContext:
    """The simulation substrate a deployment is built on.

    Bundles the six values previously passed loose: the event loop,
    the network fabric, the seeded RNG registry, the crypto provider,
    the calibrated cost model, and the (optional) telemetry hub.
    """

    loop: EventLoop
    network: Network
    rng: RngRegistry
    provider: Optional[CryptoProvider] = None
    costs: ProxyCostModel = DEFAULT_COSTS
    telemetry: Optional[TelemetryLike] = None
    #: Wire codec for protected hops: ``None`` (legacy, byte-identical
    #: seed wire), a codec name (``"json"``/``"binary"``), or a
    #: :class:`repro.rest.codec.WireCodec` instance.
    codec: Optional[Union[str, WireCodec]] = None
    #: Per-context request-id counter (replaces the process-wide
    #: ``rest.messages`` counter, whose state leaked across runs and
    #: made same-seed artifacts depend on test ordering).
    _request_ids: Any = field(default=None, init=False, repr=False)

    @classmethod
    def fresh(
        cls,
        seed: int,
        *,
        record_flows: bool = False,
        provider: Optional[CryptoProvider] = None,
        costs: ProxyCostModel = DEFAULT_COSTS,
        telemetry: Optional[TelemetryLike] = None,
        loop: Optional[EventLoop] = None,
        codec: Optional[Union[str, WireCodec]] = None,
    ) -> "SimContext":
        """A ready-to-use context: new loop, network and RNG registry.

        The network draws its latency jitter from the registry's
        ``net`` stream, exactly as every runner did by hand.  Pass
        *loop* to substitute a pre-built engine — e.g. a
        :class:`repro.obs.profiler.ProfiledLoop` wrapper, or a
        reference-engine loop from :func:`make_event_loop` — before the
        network binds to it.
        """
        if loop is None:
            loop = EventLoop()
        rng = RngRegistry(seed=seed)
        network = Network(loop=loop, rng=rng.stream("net"), record_flows=record_flows)
        return cls(
            loop=loop,
            network=network,
            rng=rng,
            provider=provider,
            costs=costs,
            telemetry=telemetry,
            codec=codec,
        )

    def with_provider(self, provider: CryptoProvider) -> "SimContext":
        """Copy of this context with *provider* installed."""
        return replace(self, provider=provider)

    def with_codec(self, codec: Optional[Union[str, WireCodec]]) -> "SimContext":
        """Copy of this context with *codec* installed."""
        return replace(self, codec=codec)

    def resolved_codec(self) -> Optional[WireCodec]:
        """The context's codec as an instance (memoized), or ``None``.

        Memoized for the same reason as :meth:`resolved_provider`: the
        service and every client must share one codec object, so codec
        identity checks (``runtime.codec is client.codec``) hold.
        """
        resolved = resolve_codec(self.codec)
        self.codec = resolved
        return resolved

    def next_request_id(self) -> int:
        """Allocate a request id scoped to this context.

        Ids start at 1 for every fresh context, so same-seed runs
        produce identical id sequences regardless of what else ran in
        the process (unlike ``rest.messages.next_request_id``).
        """
        if self._request_ids is None:
            self._request_ids = itertools.count(1)
        return next(self._request_ids)

    def resolved_provider(self) -> CryptoProvider:
        """The context's provider, defaulting to a seeded sim provider.

        The default is memoized onto the context so the service and
        every client share one provider instance (the sim provider's
        token registry is shared state).
        """
        if self.provider is None:
            self.provider = SimCryptoProvider(rng_bytes=self.rng.bytes_fn("provider"))
        return self.provider


@dataclass
class Deployment:
    """A deployed PProx service plus the context it runs in."""

    ctx: SimContext
    service: PProxService
    config: PProxConfig

    @classmethod
    def build(
        cls,
        *,
        ctx: SimContext,
        config: PProxConfig,
        lrs_picker: Callable[[], object],
        rsa_bits: int = 1024,
        overload: Optional["OverloadPolicy"] = None,
        codec: Optional[Union[str, WireCodec]] = None,
    ) -> "Deployment":
        """Assemble a service from *ctx* (keyword-only).

        Equivalent to the legacy ``build_pprox(loop, network, rng,
        config, lrs_picker, ...)`` call for the same inputs.  Pass an
        :class:`repro.overload.OverloadPolicy` as *overload* to arm
        the overload-protection subsystem on every proxy instance, and
        a :class:`repro.rest.codec.WireCodec` (or ``"json"``/
        ``"binary"``) as *codec* to switch the protected hops to
        encoded wire frames (``None`` keeps the legacy object wire).
        """
        provider = ctx.resolved_provider()
        if codec is not None:
            ctx.codec = codec
        service = build_service(
            loop=ctx.loop,
            network=ctx.network,
            rng=ctx.rng,
            config=config,
            lrs_picker=lrs_picker,
            provider=provider,
            costs=ctx.costs,
            rsa_bits=rsa_bits,
            telemetry=ctx.telemetry,
            overload=overload,
            codec=ctx.resolved_codec(),
        )
        return cls(ctx=ctx, service=service, config=config)

    def client(
        self,
        *,
        rng: Optional[random.Random] = None,
        **client_options: Any,
    ) -> PProxClient:
        """A user-side library bound to this deployment.

        *client_options* pass through to :class:`PProxClient`
        (``request_timeout``, ``max_retries``, ``backoff_base``,
        ``hedge_delay``, ``tenant``, ...).  The client's RNG defaults
        to the registry's ``client`` stream.
        """
        return PProxClient(
            self.ctx,
            self.service,
            rng=rng if rng is not None else self.ctx.rng.stream("client"),
            **client_options,
        )

    def health_monitor(self, *, interval: float = 2.0):
        """A :class:`repro.cluster.health.HealthMonitor` for the service."""
        from repro.cluster.health import HealthMonitor

        return HealthMonitor(
            loop=self.ctx.loop,
            service=self.service,
            interval=interval,
            telemetry=self.ctx.telemetry,
        )
