"""Related-work comparison points (paper §9).

A from-scratch Paillier cryptosystem and the homomorphically-encrypted
Slope One recommender of Basu et al. — the encrypted-processing class
of solutions whose multi-second latencies motivate PProx's proxying
approach.
"""

from repro.related.encrypted_slope_one import EncryptedSlopeOne, PlainSlopeOne
from repro.related.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)

__all__ = [
    "EncryptedSlopeOne",
    "PlainSlopeOne",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_paillier_keypair",
]
