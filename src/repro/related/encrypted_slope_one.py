"""Slope One collaborative filtering over Paillier-encrypted ratings.

Reproduces the encrypted-processing comparison point of the paper's
§9: Basu et al. [12, 13] ran "an homomorphically-encrypted variant of
the Slope One collaborative filtering algorithm [53]" on public
clouds and measured get latencies "in the order of several seconds" —
the class of solutions PProx's proxying approach outperforms by
orders of magnitude.

Slope One predicts a user's rating of item *j* as the average of
``r(u, i) + dev(j, i)`` over the items *i* the user rated, where
``dev(j, i)`` is the mean rating difference between the two items
across users.  In the privacy-preserving deployment:

* each user submits Paillier-encrypted ratings;
* the cloud accumulates, **without decrypting anything**, the
  per-pair ciphertext sums needed for the deviation matrix
  (homomorphic additions);
* a prediction for (user, item) is computed homomorphically from the
  encrypted deviations and the user's encrypted ratings, and only the
  user (holding the private key) decrypts the final score.

Every arithmetic step is a real modular operation on ~2048-bit
ciphertexts — the source of the multi-second latencies the paper
cites.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.related.paillier import PaillierPrivateKey, PaillierPublicKey

__all__ = ["EncryptedSlopeOne", "PlainSlopeOne"]

#: Fixed-point scaling for ratings (two decimal places).
SCALE = 100


@dataclass
class PlainSlopeOne:
    """Cleartext Slope One — the reference the encrypted variant must
    agree with."""

    #: (j, i) -> (sum of differences, count)
    deviations: Dict[Tuple[str, str], Tuple[float, int]] = field(default_factory=dict)
    user_ratings: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def fit(self, ratings: Iterable[Tuple[str, str, float]]) -> None:
        by_user: Dict[str, Dict[str, float]] = defaultdict(dict)
        for user, item, value in ratings:
            by_user[user][item] = value
        self.user_ratings = dict(by_user)
        sums: Dict[Tuple[str, str], float] = defaultdict(float)
        counts: Dict[Tuple[str, str], int] = defaultdict(int)
        for items in by_user.values():
            for j in items:
                for i in items:
                    if i == j:
                        continue
                    sums[(j, i)] += items[j] - items[i]
                    counts[(j, i)] += 1
        self.deviations = {
            pair: (sums[pair], counts[pair]) for pair in sums
        }

    def predict(self, user: str, item: str) -> Optional[float]:
        ratings = self.user_ratings.get(user, {})
        numerator = 0.0
        denominator = 0
        for rated_item, value in ratings.items():
            entry = self.deviations.get((item, rated_item))
            if entry is None or rated_item == item:
                continue
            dev_sum, count = entry
            numerator += (dev_sum / count + value) * count
            denominator += count
        if denominator == 0:
            return None
        return numerator / denominator


@dataclass
class EncryptedSlopeOne:
    """Slope One where the cloud sees only Paillier ciphertexts.

    The cloud stores encrypted per-pair difference sums and the
    (cleartext) co-rating counts — counts are not sensitive under the
    scheme of Basu et al.  Predictions use the weighted Slope One
    formula, computed homomorphically.
    """

    public: PaillierPublicKey
    #: (j, i) -> encrypted sum of SCALE*(r_j - r_i)
    encrypted_dev_sums: Dict[Tuple[str, str], int] = field(default_factory=dict)
    pair_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: user -> item -> encrypted SCALE*rating
    encrypted_ratings: Dict[str, Dict[str, int]] = field(default_factory=dict)
    homomorphic_ops: int = 0

    @staticmethod
    def client_encrypt_ratings(
        public: PaillierPublicKey, ratings: Dict[str, float]
    ) -> Dict[str, Tuple[int, int]]:
        """User-side encryption: each rating as ``(E(r), E(-r))``.

        The negated ciphertext lets the cloud form rating differences
        homomorphically without ever inverting (or seeing) a rating.
        """
        return {
            item: (
                public.encrypt(round(value * SCALE)),
                public.encrypt(-round(value * SCALE)),
            )
            for item, value in ratings.items()
        }

    def submit_user_ratings(
        self, user: str, encrypted: Dict[str, Tuple[int, int]]
    ) -> None:
        """The cloud ingests a user's encrypted ratings and updates the
        encrypted deviation structure — no plaintext ever involved."""
        self.encrypted_ratings[user] = {
            item: positive for item, (positive, _) in encrypted.items()
        }
        items = list(encrypted)
        for j in items:
            positive_j, _ = encrypted[j]
            for i in items:
                if i == j:
                    continue
                _, negative_i = encrypted[i]
                # E(r_j) (+) E(-r_i) = E(r_j - r_i)
                diff = self.public.add(positive_j, negative_i)
                self.homomorphic_ops += 1
                pair = (j, i)
                if pair in self.encrypted_dev_sums:
                    self.encrypted_dev_sums[pair] = self.public.add(
                        self.encrypted_dev_sums[pair], diff
                    )
                    self.homomorphic_ops += 1
                else:
                    self.encrypted_dev_sums[pair] = diff
                self.pair_counts[pair] = self.pair_counts.get(pair, 0) + 1

    def predict_encrypted(self, user: str, item: str) -> Optional[Tuple[int, int]]:
        """Compute E(SCALE * numerator) and the plaintext denominator.

        The weighted Slope One numerator is
        ``sum_i (dev_sum(item, i) + count * r(u, i))``; everything
        happens on ciphertexts.  The querying user decrypts and
        divides to obtain the prediction.
        """
        ratings = self.encrypted_ratings.get(user)
        if not ratings:
            return None
        accumulator: Optional[int] = None
        denominator = 0
        for rated_item, encrypted_rating in ratings.items():
            pair = (item, rated_item)
            if rated_item == item or pair not in self.encrypted_dev_sums:
                continue
            count = self.pair_counts[pair]
            term = self.public.add(
                self.encrypted_dev_sums[pair],
                self.public.mul_plain(encrypted_rating, count),
            )
            self.homomorphic_ops += 2
            accumulator = term if accumulator is None else self.public.add(accumulator, term)
            self.homomorphic_ops += 1
            denominator += count
        if accumulator is None or denominator == 0:
            return None
        return accumulator, denominator

    @staticmethod
    def decrypt_prediction(
        private: PaillierPrivateKey, encrypted_numerator: int, denominator: int
    ) -> float:
        """User-side decryption of a prediction."""
        return private.decrypt(encrypted_numerator) / SCALE / denominator
