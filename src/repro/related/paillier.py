"""The Paillier additively-homomorphic cryptosystem.

Built to reproduce the paper's §9 contrast: privacy-preserving
recommenders based on encrypted processing — e.g. Basu et al.'s
homomorphically-encrypted Slope One on public clouds — "report base
latencies for get queries in the order of several seconds", versus
PProx's proxying overhead of a few milliseconds of crypto per request.

Implements key generation (two safe-sized primes), encryption,
decryption, and the two homomorphic operations Slope One needs:

* ``add(c1, c2)``   — E(m1) (+) E(m2)      = E(m1 + m2)
* ``add_plain``     — E(m) (+) k           = E(m + k)
* ``mul_plain``     — E(m) (*) k           = E(m * k)

Plaintexts are integers modulo n; negative values are represented in
the upper half of the range (two's-complement style) so rating
deviations can be negative.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Optional, Tuple

from repro.crypto.rsa import _is_probable_prime, _random_prime  # reuse Miller-Rabin

__all__ = ["PaillierPublicKey", "PaillierPrivateKey", "generate_paillier_keypair"]


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key ``n`` (generator g = n + 1)."""

    n: int

    @cached_property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        """Largest representable magnitude (half range, signed)."""
        return self.n // 2

    def _encode(self, message: int) -> int:
        if abs(message) > self.max_plaintext:
            raise ValueError(f"plaintext magnitude {message} exceeds key range")
        return message % self.n

    def encrypt(self, message: int, rng: Optional[Callable[[int], int]] = None) -> int:
        """Encrypt a (signed) integer."""
        encoded = self._encode(message)
        if rng is None:
            def rng(bound: int) -> int:
                return int.from_bytes(os.urandom((bound.bit_length() + 7) // 8 + 8),
                                      "big") % bound
        while True:
            r = rng(self.n - 1) + 1
            if r % self.n != 0:
                break
        # g^m = (n+1)^m = 1 + n*m (mod n^2) — the standard shortcut.
        g_m = (1 + self.n * encoded) % self.n_squared
        return (g_m * pow(r, self.n, self.n_squared)) % self.n_squared

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition of two ciphertexts."""
        return (c1 * c2) % self.n_squared

    def add_plain(self, ciphertext: int, k: int) -> int:
        """Homomorphic addition of a plaintext constant."""
        g_k = (1 + self.n * self._encode(k)) % self.n_squared
        return (ciphertext * g_k) % self.n_squared

    def mul_plain(self, ciphertext: int, k: int) -> int:
        """Homomorphic multiplication by a plaintext constant."""
        return pow(ciphertext, self._encode(k), self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key (lambda = lcm(p-1, q-1), CRT-free form)."""

    public: PaillierPublicKey
    lam: int

    @cached_property
    def _mu(self) -> int:
        n = self.public.n
        # mu = (L(g^lambda mod n^2))^-1 mod n with g = n+1:
        # g^lambda = 1 + n*lambda (mod n^2) only when lambda < n; use
        # the general L function for correctness.
        x = pow(1 + n, self.lam, self.public.n_squared)
        l_value = (x - 1) // n
        return pow(l_value, -1, n)

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt to a signed integer."""
        n = self.public.n
        x = pow(ciphertext, self.lam, self.public.n_squared)
        l_value = (x - 1) // n
        plain = (l_value * self._mu) % n
        # Signed decode: upper half of the range is negative.
        return plain - n if plain > n // 2 else plain


def generate_paillier_keypair(
    bits: int = 1024, rng: Optional[Callable[[int], int]] = None
) -> Tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with a *bits*-bit modulus."""
    if bits < 256:
        raise ValueError("modulus must be at least 256 bits")
    if rng is None:
        def rng(bound: int) -> int:
            return int.from_bytes(os.urandom((bound.bit_length() + 7) // 8 + 8),
                                  "big") % bound
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        # lcm(p-1, q-1)
        import math

        lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
        public = PaillierPublicKey(n=n)
        return public, PaillierPrivateKey(public=public, lam=lam)
