"""Network-level fault mechanisms: partitions, loss, delay spikes.

:class:`NetworkFaultController` implements the
:data:`repro.simnet.network.FaultFilter` hook.  It is pure mechanism —
windows are opened and closed by the :class:`~repro.faults.supervisor.
FaultSupervisor`, which owns scheduling and telemetry.  Windows nest:
two overlapping drop windows keep the higher loss probability, two
overlapping delay windows add up, and a partition stays up until every
opener has closed it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.simnet.network import FaultDecision, FlowRecord, Network

__all__ = ["NetworkFaultController"]


@dataclass
class NetworkFaultController:
    """Installable fault filter over a :class:`Network`.

    Drop decisions draw from a dedicated seeded stream, and the stream
    is only consulted while a loss window is open — so runs without
    faults, and two same-seed runs with identical plans, consume the
    stream identically (byte-determinism of the chaos scenario).
    """

    network: Network
    rng: random.Random
    _partitions: List[FrozenSet[str]] = field(default_factory=list)
    _drop_probabilities: List[float] = field(default_factory=list)
    _extra_delays: List[float] = field(default_factory=list)
    #: Messages lost to an active partition window.
    partition_drops: int = 0
    #: Messages lost to probabilistic loss windows.
    random_drops: int = 0
    #: Deliveries stretched by an active delay window.
    delays_injected: int = 0

    def install(self) -> None:
        """Attach this controller as the network's fault filter."""
        # Bound-method equality (not identity): each `self._filter`
        # access creates a fresh bound-method object.
        if self.network.fault_filter is not None and self.network.fault_filter != self._filter:
            raise RuntimeError("network already has a fault filter installed")
        self.network.fault_filter = self._filter

    def uninstall(self) -> None:
        """Detach from the network (pending windows stop mattering)."""
        if self.network.fault_filter == self._filter:
            self.network.fault_filter = None

    @property
    def quiescent(self) -> bool:
        """True when no fault window is currently open."""
        return not (self._partitions or self._drop_probabilities or self._extra_delays)

    # -- window management (called by the supervisor) -------------------

    def begin_partition(self, role_a: str, role_b: str) -> None:
        """Sever traffic between two roles (both directions)."""
        self._partitions.append(frozenset((role_a, role_b)))

    def end_partition(self, role_a: str, role_b: str) -> None:
        """Heal one opener's partition between the two roles."""
        self._partitions.remove(frozenset((role_a, role_b)))

    def begin_drop(self, probability: float) -> None:
        """Open a loss window of the given per-message probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {probability}")
        self._drop_probabilities.append(probability)

    def end_drop(self, probability: float) -> None:
        """Close one loss window."""
        self._drop_probabilities.remove(probability)

    def begin_delay(self, extra_seconds: float) -> None:
        """Open a delay-spike window adding *extra_seconds* per hop."""
        if extra_seconds < 0:
            raise ValueError(f"extra delay must be >= 0, got {extra_seconds}")
        self._extra_delays.append(extra_seconds)

    def end_delay(self, extra_seconds: float) -> None:
        """Close one delay-spike window."""
        self._extra_delays.remove(extra_seconds)

    # -- the filter -----------------------------------------------------

    def _filter(self, record: FlowRecord) -> Optional[FaultDecision]:
        endpoints = frozenset((record.source_role, record.destination_role))
        for partition in self._partitions:
            if partition == endpoints:
                self.partition_drops += 1
                return FaultDecision(drop=True)
        if self._drop_probabilities:
            probability = max(self._drop_probabilities)
            if self.rng.random() < probability:
                self.random_drops += 1
                return FaultDecision(drop=True)
        if self._extra_delays:
            self.delays_injected += 1
            return FaultDecision(extra_delay=sum(self._extra_delays))
        return None
