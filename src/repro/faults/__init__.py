"""Deterministic fault injection and recovery orchestration.

The subsystem has three mechanism layers and one policy layer:

* :mod:`repro.faults.plan` — *what breaks when*: seeded, immutable
  :class:`FaultPlan` schedules sampled from a :class:`ChaosSpec`;
* :mod:`repro.faults.netfaults` — wire faults (partitions, loss,
  delay spikes) behind the network's fault-filter hook;
* :mod:`repro.faults.brownout` — LRS degradation (retryable errors,
  inflated latency) as a transparent handle wrapper;
* :mod:`repro.faults.supervisor` — schedules the plan, crashes and
  restarts enclave instances, opens/closes fault windows, and emits
  structured chaos telemetry.

Everything runs on the virtual clock and draws from named RNG streams,
so a chaos run is exactly as reproducible as a fault-free one.
"""

from repro.faults.brownout import BrownoutLrs
from repro.faults.netfaults import NetworkFaultController
from repro.faults.plan import FAULT_KINDS, ChaosSpec, FaultEvent, FaultPlan
from repro.faults.supervisor import FaultSupervisor

__all__ = [
    "BrownoutLrs",
    "ChaosSpec",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSupervisor",
    "NetworkFaultController",
]
