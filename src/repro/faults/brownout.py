"""LRS brownout: the backing recommender degrades without dying.

:class:`BrownoutLrs` wraps any LRS handle (the nginx stub, a Harness
frontend picker target, ...) and, while a brownout window is open,
answers a seeded fraction of requests with *retryable* errors and
serves the rest with inflated latency.  Outside a window it is a
transparent pass-through, so wrapping is free for fault-less runs.

The error reply carries only ``{"retryable": True, "error":
"BrownoutError"}`` — like every error on the wire, no request content
is ever echoed back (redaction safety).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.proxy.layers import RETRYABLE_STATUS
from repro.rest.messages import Request, Response
from repro.simnet.clock import EventLoop

__all__ = ["BrownoutLrs"]


@dataclass
class BrownoutLrs:
    """Degrading wrapper around an LRS handle.

    Unknown attributes (``address``, ``pending``, ``requests_served``,
    ``items``, ...) delegate to the wrapped service, so the wrapper
    drops into any ``lrs_picker`` unchanged.
    """

    inner: Any
    loop: EventLoop
    rng: random.Random
    #: Latency added to requests served during a window.
    extra_delay: float = 0.05
    #: Share of requests rejected during a window (set per window).
    error_rate: float = 0.5
    #: Open-window nesting count.
    active: int = 0
    #: Requests rejected with a retryable error during brownouts.
    rejected: int = 0
    #: Requests served with inflated latency during brownouts.
    slowed: int = 0

    def begin(self, error_rate: float) -> None:
        """Open a brownout window with the given rejection rate."""
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate must be in [0, 1], got {error_rate}")
        self.active += 1
        self.error_rate = error_rate

    def end(self) -> None:
        """Close one brownout window."""
        if self.active <= 0:
            raise RuntimeError("no brownout window is open")
        self.active -= 1

    def handle(self, request: Request, reply: Callable[[Response], None]) -> None:
        """Serve, slow-serve or reject *request* depending on the window."""
        if self.active <= 0:
            self.inner.handle(request, reply)
            return
        if self.rng.random() < self.error_rate:
            self.rejected += 1
            reply(Response(
                status=RETRYABLE_STATUS,
                fields={"retryable": True, "error": "BrownoutError"},
                request_id=request.request_id,
            ))
            return
        self.slowed += 1
        self.loop.schedule(self.extra_delay, lambda: self.inner.handle(request, reply))

    def __getattr__(self, name: str) -> Any:
        if name == "inner":  # guard against recursion before init
            raise AttributeError(name)
        return getattr(self.inner, name)
