"""Fault supervisor: arms a plan against a live deployment.

The supervisor is the policy half of the subsystem: it walks a
:class:`~repro.faults.plan.FaultPlan`, schedules every event on the
virtual clock, and drives the mechanisms — ``instance.fail()`` plus
:meth:`repro.proxy.service.PProxService.restart_instance` for crashes,
the :class:`~repro.faults.netfaults.NetworkFaultController` for wire
faults, and :class:`~repro.faults.brownout.BrownoutLrs` for LRS
degradation.  Every injection and recovery is recorded as a structured
``chaos`` fault event (window boundaries, not per-message, so the
event log stays small and byte-deterministic).

Recovery of in-flight work is *not* the supervisor's job: the health
monitor ejects/readmits balancer backends, the shuffle buffers drain on
crash, and clients retry with backoff — the supervisor only breaks
things on schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.brownout import BrownoutLrs
from repro.faults.netfaults import NetworkFaultController
from repro.faults.plan import FaultEvent, FaultPlan
from repro.proxy.service import PProxService
from repro.simnet.clock import EventLoop
from repro.telemetry.types import TelemetryLike

__all__ = ["FaultSupervisor"]


@dataclass
class FaultSupervisor:
    """Schedules a fault plan and injects it into a deployment."""

    loop: EventLoop
    service: PProxService
    netfaults: NetworkFaultController
    #: Brownout wrapper around the LRS, if the deployment has one.
    lrs: Optional[BrownoutLrs] = None
    telemetry: Optional[TelemetryLike] = None
    #: Injection bookkeeping.
    crashes_injected: int = 0
    restarts_completed: int = 0
    windows_opened: int = 0
    skipped: int = 0
    armed_events: List[FaultEvent] = field(default_factory=list)

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every event of *plan* on the virtual clock."""
        self.netfaults.install()
        for event in plan:
            self.armed_events.append(event)
            self.loop.schedule_at(
                max(self.loop.now, event.at),
                lambda ev=event: self._inject(ev),
            )

    # -- dispatch -------------------------------------------------------

    def _inject(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_inject_{event.kind}")
        handler(event)

    def _inject_crash(self, event: FaultEvent) -> None:
        instance = self._find_instance(event.target)
        if instance is None or not instance.alive:
            # Already dead (overlapping crash events) or unknown name.
            self.skipped += 1
            self._emit({"event": "fault_skipped", **event.to_dict()})
            return
        drained = instance.fail()
        self.crashes_injected += 1
        self._emit({
            "event": "instance_crashed",
            "instance": instance.name,
            "generation": instance.generation,
            "drained": drained,
            **event.to_dict(),
        })
        if event.duration > 0:
            self.loop.schedule(
                event.duration, lambda: self._restart(instance)
            )

    def _restart(self, instance: Any) -> None:
        if instance.alive:
            return
        # restart_instance re-creates the enclave and completes
        # attestation + key re-provisioning *before* flipping alive, so
        # the health monitor can never readmit an unprovisioned backend.
        self.service.restart_instance(instance)
        self.restarts_completed += 1
        self._emit({
            "event": "instance_restarted",
            "instance": instance.name,
            "generation": instance.generation,
            "attested": instance.enclave.attested,
            # Key generation the fresh enclave was provisioned at: lets
            # a rotation post-mortem confirm that a mid-drill restart
            # came back on the current epoch, not a stale one.
            "key_generation": getattr(self.service.provisioner, "key_generation", 0),
        })

    def _inject_partition(self, event: FaultEvent) -> None:
        role_a, _, role_b = event.target.partition("|")
        if not role_a or not role_b:
            raise ValueError(
                f"partition target must be 'roleA|roleB', got {event.target!r}"
            )
        self.netfaults.begin_partition(role_a, role_b)
        self._open_window(event)
        self.loop.schedule(event.duration, lambda: self._heal_partition(event, role_a, role_b))

    def _heal_partition(self, event: FaultEvent, role_a: str, role_b: str) -> None:
        self.netfaults.end_partition(role_a, role_b)
        self._close_window(event)

    def _inject_drop(self, event: FaultEvent) -> None:
        self.netfaults.begin_drop(event.magnitude)
        self._open_window(event)

        def heal() -> None:
            self.netfaults.end_drop(event.magnitude)
            self._close_window(event)

        self.loop.schedule(event.duration, heal)

    def _inject_delay(self, event: FaultEvent) -> None:
        self.netfaults.begin_delay(event.magnitude)
        self._open_window(event)

        def heal() -> None:
            self.netfaults.end_delay(event.magnitude)
            self._close_window(event)

        self.loop.schedule(event.duration, heal)

    def _inject_brownout(self, event: FaultEvent) -> None:
        if self.lrs is None:
            self.skipped += 1
            self._emit({"event": "fault_skipped", **event.to_dict()})
            return
        self.lrs.begin(event.magnitude)
        self._open_window(event)

        def heal() -> None:
            self.lrs.end()
            self._close_window(event)

        self.loop.schedule(event.duration, heal)

    # -- helpers --------------------------------------------------------

    def _find_instance(self, name: str) -> Optional[Any]:
        for instance in self.service.ua_instances + self.service.ia_instances:
            if instance.name == name:
                return instance
        return None

    def _open_window(self, event: FaultEvent) -> None:
        self.windows_opened += 1
        self._emit({"event": "fault_window_open", **event.to_dict()})

    def _close_window(self, event: FaultEvent) -> None:
        self._emit({"event": "fault_window_closed", **event.to_dict()})

    def _emit(self, payload: Dict[str, Any]) -> None:
        if self.telemetry is not None:
            self.telemetry.emit_fault("chaos", payload)
