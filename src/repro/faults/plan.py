"""Fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a deterministic schedule of :class:`FaultEvent`
entries in *virtual* time.  Plans can be written literally in a
scenario config, or sampled from a :class:`ChaosSpec` through a named
:class:`~repro.simnet.rng.RngRegistry` stream — the same seed always
yields the same plan, which is what makes two chaos runs with one seed
byte-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.simnet.rng import RngRegistry

__all__ = ["FaultEvent", "FaultPlan", "ChaosSpec", "FAULT_KINDS"]

#: Fault kinds the supervisor knows how to inject.
FAULT_KINDS = ("crash", "partition", "drop", "delay", "brownout")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is the virtual-time injection instant.  Meaning of the rest
    varies by kind:

    * ``crash`` — *target* is the instance name; ``duration`` is the
      outage before the supervisor restarts it (``<= 0``: no restart).
    * ``partition`` — *target* is ``"roleA|roleB"``; messages between
      the two roles are dropped for ``duration`` seconds.
    * ``drop`` — every message is lost with probability ``magnitude``
      for ``duration`` seconds.
    * ``delay`` — every delivery is stretched by ``magnitude`` extra
      seconds for ``duration`` seconds.
    * ``brownout`` — the LRS answers with retryable errors with
      probability ``magnitude`` (and inflated latency otherwise) for
      ``duration`` seconds.
    """

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (telemetry fault events embed this)."""
        return {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda event: (event.at, event.kind, event.target)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def shifted(self, offset: float) -> "FaultPlan":
        """Copy of the plan with every event moved by *offset* seconds."""
        return FaultPlan(tuple(replace(e, at=e.at + offset) for e in self.events))

    def of_kind(self, kind: str) -> List[FaultEvent]:
        """Events of one kind, in schedule order."""
        return [event for event in self.events if event.kind == kind]

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        return cls(tuple(events))


@dataclass(frozen=True)
class ChaosSpec:
    """Knobs from which a seeded fault plan is sampled.

    Injection instants are drawn uniformly from the middle of the run
    (``[0.15, 0.7] * horizon``) so every fault has time to bite *and*
    to recover before measurement ends.
    """

    horizon: float
    #: Enclave crashes: how many, and outage length before restart.
    crashes: int = 2
    crash_outage: float = 1.0
    #: Network partitions between role pairs.
    partitions: int = 1
    partition_duration: float = 0.75
    partition_pairs: Tuple[str, ...] = ("ua|ia",)
    #: Probabilistic message-loss window.
    drop_windows: int = 1
    drop_duration: float = 0.75
    drop_probability: float = 0.05
    #: Delay-spike window.
    delay_windows: int = 1
    delay_duration: float = 0.75
    delay_extra_seconds: float = 0.02
    #: LRS brownouts.
    brownouts: int = 1
    brownout_duration: float = 1.0
    brownout_error_rate: float = 0.5

    def sample(
        self,
        rng: RngRegistry,
        ua_names: Sequence[str],
        ia_names: Sequence[str],
    ) -> FaultPlan:
        """Draw a concrete plan from the spec via the ``faults`` stream."""
        stream = rng.stream("faults")
        low, high = 0.15 * self.horizon, 0.7 * self.horizon
        crashables = list(ua_names) + list(ia_names)
        events: List[FaultEvent] = []
        for _ in range(self.crashes):
            if not crashables:
                break
            events.append(
                FaultEvent(
                    at=stream.uniform(low, high),
                    kind="crash",
                    target=stream.choice(crashables),
                    duration=self.crash_outage,
                )
            )
        for _ in range(self.partitions):
            events.append(
                FaultEvent(
                    at=stream.uniform(low, high),
                    kind="partition",
                    target=stream.choice(list(self.partition_pairs)),
                    duration=self.partition_duration,
                )
            )
        for _ in range(self.drop_windows):
            events.append(
                FaultEvent(
                    at=stream.uniform(low, high),
                    kind="drop",
                    duration=self.drop_duration,
                    magnitude=self.drop_probability,
                )
            )
        for _ in range(self.delay_windows):
            events.append(
                FaultEvent(
                    at=stream.uniform(low, high),
                    kind="delay",
                    duration=self.delay_duration,
                    magnitude=self.delay_extra_seconds,
                )
            )
        for _ in range(self.brownouts):
            events.append(
                FaultEvent(
                    at=stream.uniform(low, high),
                    kind="brownout",
                    target="lrs",
                    duration=self.brownout_duration,
                    magnitude=self.brownout_error_rate,
                )
            )
        return FaultPlan.from_events(events)
