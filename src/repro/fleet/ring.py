"""Consistent-hash shard directory for the sharded proxy fleet.

The directory maps each client *attempt* to one UA/IA shard pair.  Two
properties are load-bearing:

* **Privacy.**  The ring key is the per-attempt request nonce
  (``Request.request_id``) — a context-local counter minted fresh for
  every attempt, hedge and retry.  It is never derived from the user
  identifier, so the shard a request lands on carries no information
  about *who* sent it, and a retry re-rolls its shard along with its
  nonce.  :func:`repro.privacy.wire.shard_routing_violations` audits
  both halves: the directory's key log must contain only int nonces,
  and no wire hop may carry a shard-identity field.
* **Determinism.**  Ring points come from ``blake2b`` digests, not the
  per-process-salted builtin ``hash``, so two same-seed runs place the
  same nonces on the same shards byte-for-byte.

Failover is positional: when the owning shard has no live UA instance
(a whole failure domain down), the directory walks the ring to the
next distinct shard.  Nothing on the wire names the shard — instance
addresses keep the ``pprox-ua-*`` / ``pprox-ia-*`` prefixes the
privacy auditors classify by.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.proxy.layers import ItemAnonymizer, UserAnonymizer
from repro.simnet.loadbalancer import LoadBalancer, NoUpstream

__all__ = [
    "SHARD_STATES",
    "Shard",
    "HashRing",
    "ShardDirectory",
    "ring_point",
]

#: Shard lifecycle states owned by the FleetSupervisor.  Mirrors the
#: rotation coordinator's pause-never-abort discipline: a shard leaves
#: ``live`` only through an explicit split/merge operation and can
#: park in any state while the fleet pauses for faults or overload.
SHARD_STATES = (
    "provisioning",
    "live",
    "splitting",
    "merging",
    "draining",
    "retired",
)

#: States in which a shard may appear on the ring and take traffic.
ROUTABLE_STATES = frozenset({"live", "splitting", "merging", "draining"})


def ring_point(label: str) -> int:
    """Deterministic 64-bit ring position for *label*.

    ``blake2b`` rather than ``hash()``: the builtin is salted per
    process and would break byte-identical same-seed artifacts.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class Shard:
    """One UA/IA pair group with its own balancers and failure domain."""

    shard_id: str
    domain: str
    ua_balancer: LoadBalancer
    ia_balancer: LoadBalancer
    ua_instances: List[UserAnonymizer] = field(default_factory=list)
    ia_instances: List[ItemAnonymizer] = field(default_factory=list)
    state: str = "provisioning"
    created_at: float = 0.0

    def instances(self) -> list:
        """Every instance of both layers (placement / kill plans)."""
        return list(self.ua_instances) + list(self.ia_instances)

    @property
    def routable(self) -> bool:
        """Can this shard take a request right now?"""
        return self.state in ROUTABLE_STATES and len(self.ua_balancer) > 0

    @property
    def live_ia_count(self) -> int:
        """Alive IA instances — the I in this shard's S*I floor."""
        return sum(1 for inst in self.ia_instances if inst.alive)

    def set_state(self, state: str) -> None:
        if state not in SHARD_STATES:
            raise ValueError(f"unknown shard state {state!r}")
        self.state = state


class HashRing:
    """Sorted-points consistent-hash ring with virtual nodes."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._members: Dict[str, None] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._members

    def members(self) -> List[str]:
        """Shard ids on the ring, in insertion order."""
        return list(self._members)

    def add(self, shard_id: str) -> None:
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._members[shard_id] = None
        for replica in range(self.vnodes):
            self._points.append((ring_point(f"{shard_id}#{replica}"), shard_id))
        self._points.sort()

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._members:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        del self._members[shard_id]
        self._points = [pt for pt in self._points if pt[1] != shard_id]

    def route(self, nonce: int) -> str:
        """Owning shard id for an (integer) request nonce."""
        if not self._points:
            raise NoUpstream("shard ring is empty")
        point = ring_point(f"n{nonce}")
        index = bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def successors(self, nonce: int) -> Iterator[str]:
        """Distinct shard ids in ring order from the nonce's point.

        The first yielded id is the owner; later ones are the
        failover order a dead shard's traffic spills to.
        """
        if not self._points:
            return
        point = ring_point(f"n{nonce}")
        start = bisect_right(self._points, (point, "￿"))
        seen: Dict[str, None] = {}
        total = len(self._points)
        for offset in range(total):
            shard_id = self._points[(start + offset) % total][1]
            if shard_id not in seen:
                seen[shard_id] = None
                yield shard_id


class ShardDirectory:
    """Routes request nonces to shards; records evidence for the audit."""

    #: Bounded sample of routing keys kept for the privacy audit.
    KEY_LOG_LIMIT = 4096

    def __init__(self, vnodes: int = 64) -> None:
        self.ring = HashRing(vnodes=vnodes)
        self.shards: Dict[str, Shard] = {}
        self.routed = 0
        self.failovers = 0
        #: Routing keys the directory refused (non-int) — the privacy
        #: audit requires this to stay empty.
        self.rejected_keys: List[str] = []
        self.key_log: List[int] = []

    # -- membership ----------------------------------------------------

    def register(self, shard: Shard) -> None:
        """Track a shard (not yet routable; see :meth:`activate`)."""
        if shard.shard_id in self.shards:
            raise ValueError(f"shard {shard.shard_id!r} already registered")
        self.shards[shard.shard_id] = shard

    def activate(self, shard_id: str) -> None:
        """Flip the ring: *shard_id* starts owning key ranges."""
        self._require(shard_id)
        self.ring.add(shard_id)

    def deactivate(self, shard_id: str) -> None:
        """Flip the ring: *shard_id* stops owning key ranges."""
        self._require(shard_id)
        self.ring.remove(shard_id)

    def forget(self, shard_id: str) -> None:
        """Drop a retired shard from the directory entirely."""
        if shard_id in self.ring:
            self.ring.remove(shard_id)
        self.shards.pop(shard_id, None)

    def _require(self, shard_id: str) -> Shard:
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ValueError(f"unknown shard {shard_id!r}")
        return shard

    # -- routing -------------------------------------------------------

    def route(self, nonce: int) -> Shard:
        """Owning shard for *nonce*, failing over along the ring.

        Only int nonces route — a bool or any user-derived value is
        refused and recorded so the privacy audit fails loudly rather
        than the directory silently keying on identity.
        """
        if type(nonce) is not int:
            self.rejected_keys.append(repr(nonce))
            raise TypeError(
                f"shard routing key must be an int request nonce, got "
                f"{type(nonce).__name__}"
            )
        if len(self.key_log) < self.KEY_LOG_LIMIT:
            self.key_log.append(nonce)
        primary = True
        for shard_id in self.ring.successors(nonce):
            shard = self.shards[shard_id]
            if shard.routable:
                self.routed += 1
                if not primary:
                    self.failovers += 1
                return shard
            primary = False
        raise NoUpstream("no routable shard for any ring position")
