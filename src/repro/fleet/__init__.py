"""Self-healing sharded proxy fleet.

A fleet is a set of UA+IA shard pairs behind a consistent-hash
directory.  Routing is keyed on the per-attempt request nonce — never
a user identifier — so shard placement is unlinkable to users and
every retry automatically re-rolls its shard (which is also the
failover path).  A supervisor owns the shard lifecycle (provision →
live → splitting/merging → draining → retired) with the same
pause-never-abort discipline as key rotation: handoff barriers keep
epochs/keys provisioned before a ring flip and drain in-flight
batches on the old shard, so the anonymity floor ``S*I`` holds
through splits, merges and whole-failure-domain loss.
"""

from repro.fleet.drill import (
    FleetDrillResult,
    default_fleet_config,
    default_fleet_overload,
    fleet_slo_objectives,
    run_fleet_drill,
)
from repro.fleet.placement import (
    domain_kill_plan,
    domain_node,
    placement_violations,
)
from repro.fleet.ring import (
    ROUTABLE_STATES,
    SHARD_STATES,
    HashRing,
    Shard,
    ShardDirectory,
    ring_point,
)
from repro.fleet.service import ShardedPProxService, build_fleet
from repro.fleet.supervisor import (
    FleetSupervisor,
    ShardAutoscaler,
    ShardOperation,
)

__all__ = [
    "SHARD_STATES",
    "ROUTABLE_STATES",
    "ring_point",
    "Shard",
    "HashRing",
    "ShardDirectory",
    "domain_node",
    "domain_kill_plan",
    "placement_violations",
    "ShardedPProxService",
    "build_fleet",
    "FleetSupervisor",
    "ShardAutoscaler",
    "ShardOperation",
    "FleetDrillResult",
    "run_fleet_drill",
    "fleet_slo_objectives",
    "default_fleet_config",
    "default_fleet_overload",
]
