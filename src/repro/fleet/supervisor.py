"""Shard lifecycle supervision: split/merge that never thins a batch.

:class:`FleetSupervisor` owns the shard state machine
(``provision -> live -> splitting/merging -> draining -> retired``)
with the same pause-never-abort discipline as
:class:`repro.proxy.epochs.RotationCoordinator`: a periodic tick
advances at most one phase, and any condition that could thin the
anonymity set — an instance of an involved shard down, a released
flush below the floor, an overload signal — holds the operation where
it stands until the condition clears.  Nothing is ever rolled back and
no request is aborted on behalf of a reconfiguration.

Handoff barriers:

* **split** — the new shard is fully provisioned (enclaves created,
  attested, keyed — and at the *current* epoch generation when epochs
  are live) before the ring flips; after the flip the source keeps
  serving and every batch it buffered pre-flip is released within one
  shuffle timeout, so the operation completes only after
  ``max(shuffle_timeout, drain_grace)`` of quiet.
* **merge** — the ring flips the source out first (its key ranges fall
  to ring successors), then the source drains in place: it leaves
  service only once its buffers are empty *and* the quiet period has
  passed, so in-flight batches flush on the old shard at full size.

The supervisor also runs the fleet's per-shard health probing
(:class:`repro.cluster.health.HealthMonitor` only watches the global
balancers): dead instances are ejected from both their shard balancer
and the global one, recovered instances are readmitted only after
their rebuilt enclave verifies at the active key generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.autoscaler import ElasticScaler, ScalingDecision
from repro.fleet.ring import Shard
from repro.fleet.service import ShardedPProxService
from repro.simnet.clock import EventLoop

__all__ = [
    "FleetSupervisor",
    "ShardOperation",
    "ShardAutoscaler",
]


@dataclass
class ShardOperation:
    """One in-flight split or merge, with its phase timeline."""

    kind: str  # "split" | "merge"
    source: Shard
    target: Shard
    started_at: float
    #: "prepare" -> "handoff" (split) / "drain" (merge) -> done.
    phase: str = "prepare"
    flipped_at: Optional[float] = None
    completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def shards(self) -> List[Shard]:
        return [self.source, self.target]


@dataclass
class FleetSupervisor:
    """Owns shard lifecycle, probing, and split/merge handoffs."""

    loop: EventLoop
    fleet: ShardedPProxService
    telemetry: Any = None
    tick_interval: float = 0.1
    #: Post-flip quiet period; the effective barrier is
    #: ``max(shuffle_timeout, drain_grace)``.
    drain_grace: float = 0.5
    #: Anonymity floor a released flush must meet for operations to
    #: advance; defaults to the configured shuffle size S.
    min_fill: Optional[int] = None
    overload_sojourn_threshold: float = 0.25
    ticks: int = 0
    pauses: int = 0
    pause_reasons: Dict[str, int] = field(default_factory=dict)
    paused: bool = False
    pause_reason: Optional[str] = None
    splits_started: int = 0
    splits_completed: int = 0
    merges_started: int = 0
    merges_completed: int = 0
    ejections: int = 0
    readmissions: int = 0
    reprovisions: int = 0
    operations: List[ShardOperation] = field(default_factory=list)
    _running: bool = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Begin the probe/advance tick loop."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.tick_interval, self._tick)

    def stop(self) -> None:
        """Halt ticking where it stands (operations stay parked)."""
        self._running = False

    def guard(self, layer: str) -> bool:
        """Autoscaler guard: True while any shard is mid-operation.

        A splitting source holds batches that must drain at full size
        and a merging source's enclaves still serve in-flight traffic,
        so instance retirement must wait — same contract as
        :meth:`RotationCoordinator.guard`, covering both layers.
        """
        return any(not op.done for op in self.operations)

    @property
    def active_operations(self) -> List[ShardOperation]:
        return [op for op in self.operations if not op.done]

    # -- operations -----------------------------------------------------

    def split(self, source_id: str) -> Shard:
        """Start splitting *source_id*: provision a sibling shard now,
        flip the ring only once the sibling passes the key barrier."""
        source = self.fleet.directory.shards[source_id]
        if source.state != "live":
            raise ValueError(
                f"shard {source_id} is {source.state}, not live; cannot split"
            )
        source.set_state("splitting")
        target = self.fleet.add_shard(activate=False)
        op = ShardOperation(
            kind="split", source=source, target=target, started_at=self.loop.now
        )
        self.operations.append(op)
        self.splits_started += 1
        self._emit(
            {
                "event": "shard_split_started",
                "source": source.shard_id,
                "target": target.shard_id,
            }
        )
        return target

    def merge(self, source_id: str, into_id: str) -> None:
        """Start merging *source_id* away; its ranges fall to ring
        successors (*into_id* among them) at the flip."""
        source = self.fleet.directory.shards[source_id]
        target = self.fleet.directory.shards[into_id]
        if source.state != "live":
            raise ValueError(
                f"shard {source_id} is {source.state}, not live; cannot merge"
            )
        if target.state != "live" or source_id == into_id:
            raise ValueError(f"shard {into_id} cannot absorb {source_id}")
        source.set_state("merging")
        op = ShardOperation(
            kind="merge", source=source, target=target, started_at=self.loop.now
        )
        self.operations.append(op)
        self.merges_started += 1
        self._emit(
            {
                "event": "shard_merge_started",
                "source": source.shard_id,
                "into": target.shard_id,
            }
        )

    # -- tick loop ------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._probe()
        active = self.active_operations
        if active:
            reason = self._pause_reason(active)
            if reason is not None:
                if not self.paused:
                    self.paused = True
                    self.pauses += 1
                    self.pause_reasons[reason] = self.pause_reasons.get(reason, 0) + 1
                    self._emit({"event": "fleet_paused", "reason": reason})
                self.pause_reason = reason
            else:
                if self.paused:
                    self.paused = False
                    self.pause_reason = None
                    self._emit({"event": "fleet_resumed"})
                for op in active:
                    self._advance(op)
        self.loop.schedule(self.tick_interval, self._tick)

    def _probe(self) -> None:
        """Per-shard health pass: eject dead, readmit verified-alive."""
        provisioner = self.fleet.provisioner
        for shard in self.fleet.directory.shards.values():
            if shard.state == "retired":
                continue
            for layer, instances, balancer, global_balancer in (
                ("UA", shard.ua_instances, shard.ua_balancer, self.fleet.ua_balancer),
                ("IA", shard.ia_instances, shard.ia_balancer, self.fleet.ia_balancer),
            ):
                for instance in instances:
                    if not instance.alive:
                        if balancer.eject(instance):
                            global_balancer.eject(instance)
                            self.ejections += 1
                            self._emit(
                                {
                                    "event": "shard_instance_ejected",
                                    "shard": shard.shard_id,
                                    "layer": layer,
                                    "instance": instance.name,
                                }
                            )
                        continue
                    if not balancer.contains(instance):
                        # Readmission barrier: the rebuilt enclave must
                        # hold the active key generation before taking
                        # traffic again (mirrors HealthMonitor).
                        if provisioner.epochs_enabled and not provisioner.verify_generation(
                            instance.enclave
                        ):
                            provisioner.reprovision(layer, instance.enclave)
                            self.reprovisions += 1
                        balancer.readmit(instance)
                        global_balancer.readmit(instance)
                        self.readmissions += 1
                        self._emit(
                            {
                                "event": "shard_instance_readmitted",
                                "shard": shard.shard_id,
                                "layer": layer,
                                "instance": instance.name,
                            }
                        )

    def _pause_reason(self, active: List[ShardOperation]) -> Optional[str]:
        """Hold-the-line check, scoped to shards touched by operations."""
        involved: List[Shard] = []
        seen: Dict[str, None] = {}
        for op in active:
            for shard in op.shards():
                if shard.shard_id not in seen:
                    seen[shard.shard_id] = None
                    involved.append(shard)
        instances = [inst for shard in involved for inst in shard.instances()]
        if any(not inst.alive for inst in instances):
            return "instance_down"
        floor = self.min_fill
        if floor is None:
            floor = self.fleet.config.shuffle_size
        if floor > 1:
            for instance in instances:
                buffer = getattr(instance, "request_buffer", None)
                if buffer is None:
                    buffer = getattr(instance, "response_buffer", None)
                if buffer is None:
                    continue
                last = buffer.last_flush_size
                if last is not None and last < floor:
                    return "anonymity_floor"
        for instance in instances:
            signal_fn = getattr(instance, "overload_signal", None)
            if signal_fn is None:
                continue
            if signal_fn().queue_sojourn > self.overload_sojourn_threshold:
                return "overload"
        return None

    def _barrier_met(self, shard: Shard) -> bool:
        """Key/attestation barrier: every enclave of *shard* is alive,
        attested, and provisioned at the active generation."""
        provisioner = self.fleet.provisioner
        for instance in shard.instances():
            if not instance.alive or not instance.enclave.attested:
                return False
            if provisioner.epochs_enabled and not provisioner.verify_generation(
                instance.enclave
            ):
                provisioner.reprovision(
                    "UA" if instance in shard.ua_instances else "IA",
                    instance.enclave,
                )
                self.reprovisions += 1
        return True

    def _quiet_period(self) -> float:
        return max(self.fleet.config.shuffle_timeout, self.drain_grace)

    def _advance(self, op: ShardOperation) -> None:
        directory = self.fleet.directory
        if op.kind == "split":
            if op.phase == "prepare":
                if not self._barrier_met(op.target):
                    return
                op.target.set_state("live")
                directory.activate(op.target.shard_id)
                op.flipped_at = self.loop.now
                op.phase = "handoff"
                self._emit(
                    {
                        "event": "shard_ring_flipped",
                        "kind": "split",
                        "source": op.source.shard_id,
                        "target": op.target.shard_id,
                    }
                )
                return
            if op.phase == "handoff":
                # Every batch the source buffered before the flip has
                # been released (size- or timer-flushed) once a full
                # shuffle timeout has passed; hold the extra grace so
                # the flush-floor pause check above sees them land.
                if self.loop.now - op.flipped_at < self._quiet_period():
                    return
                op.source.set_state("live")
                op.completed_at = self.loop.now
                op.phase = "done"
                self.splits_completed += 1
                self._emit(
                    {
                        "event": "shard_split_completed",
                        "source": op.source.shard_id,
                        "target": op.target.shard_id,
                        "seconds": op.completed_at - op.started_at,
                    }
                )
            return
        # merge
        if op.phase == "prepare":
            directory.deactivate(op.source.shard_id)
            op.source.set_state("draining")
            op.flipped_at = self.loop.now
            op.phase = "drain"
            self._emit(
                {
                    "event": "shard_ring_flipped",
                    "kind": "merge",
                    "source": op.source.shard_id,
                    "target": op.target.shard_id,
                }
            )
            return
        if op.phase == "drain":
            if self.loop.now - op.flipped_at < self._quiet_period():
                return
            if any(inst.pending for inst in op.source.instances()):
                return
            self.fleet.remove_shard(op.source)
            op.completed_at = self.loop.now
            op.phase = "done"
            self.merges_completed += 1
            self._emit(
                {
                    "event": "shard_merge_completed",
                    "source": op.source.shard_id,
                    "into": op.target.shard_id,
                    "seconds": op.completed_at - op.started_at,
                }
            )

    def _emit(self, payload: Dict[str, Any]) -> None:
        if self.telemetry is not None:
            self.telemetry.event_log.emit("fleet", "operator", payload)


@dataclass
class ShardAutoscaler(ElasticScaler):
    """Shard-granular elastic scaling on the per-instance rate band.

    Reuses :class:`ElasticScaler`'s band fields and decision log but
    acts through the supervisor: a hot shard (per-live-instance rate
    above ``high_rps``) is split, a cold one (below ``low_rps``)
    merged into a sibling — each deferred, never forced, while another
    operation is in flight.
    """

    supervisor: Optional[FleetSupervisor] = None
    min_shards: int = 1
    max_shards: int = 8
    _last_shard_counts: Dict[str, int] = field(default_factory=dict)

    def _shard_processed(self) -> Dict[str, int]:
        fleet: ShardedPProxService = self.service
        return {
            shard.shard_id: sum(i.requests_processed for i in shard.ua_instances)
            for shard in fleet.directory.shards.values()
            if shard.state not in ("retired",)
        }

    def _snapshot(self) -> None:
        self._last_shard_counts = self._shard_processed()

    def _tick(self) -> None:
        if not self._running:
            return
        supervisor = self.supervisor
        fleet: ShardedPProxService = self.service
        current = self._shard_processed()
        rates: Dict[str, float] = {}
        for shard_id, processed in current.items():
            shard = fleet.directory.shards.get(shard_id)
            if shard is None or shard.state != "live":
                continue
            live = sum(1 for i in shard.ua_instances if i.alive)
            delta = processed - self._last_shard_counts.get(shard_id, 0)
            rates[shard_id] = delta / self.interval / max(live, 1)
        if rates and supervisor is not None:
            live_shards = [
                sid
                for sid in rates
                if fleet.directory.shards[sid].state == "live"
            ]
            hottest = max(rates, key=lambda sid: rates[sid])
            coldest = min(rates, key=lambda sid: rates[sid])
            if rates[hottest] > self.high_rps and len(live_shards) < self.max_shards:
                if supervisor.guard("UA"):
                    self.deferred_scale_downs += 1
                    self.decisions.append(
                        ScalingDecision(
                            self.loop.now, f"shard:{hottest}", "split-deferred",
                            len(live_shards), rates[hottest],
                        )
                    )
                else:
                    supervisor.split(hottest)
                    self.decisions.append(
                        ScalingDecision(
                            self.loop.now, f"shard:{hottest}", "split",
                            len(live_shards) + 1, rates[hottest],
                        )
                    )
            elif rates[coldest] < self.low_rps and len(live_shards) > self.min_shards:
                if supervisor.guard("UA"):
                    self.deferred_scale_downs += 1
                    self.decisions.append(
                        ScalingDecision(
                            self.loop.now, f"shard:{coldest}", "merge-deferred",
                            len(live_shards), rates[coldest],
                        )
                    )
                else:
                    into = next(
                        sid for sid in live_shards if sid != coldest
                    )
                    supervisor.merge(coldest, into)
                    self.decisions.append(
                        ScalingDecision(
                            self.loop.now, f"shard:{coldest}", "merge",
                            len(live_shards) - 1, rates[coldest],
                        )
                    )
        self._snapshot()
        self.loop.schedule(self.interval, self._tick)
