"""Fleet scenario: whole-failure-domain loss mid-split (drill).

The fleet's operational promise is that *membership churn never costs
a request and never thins a batch*.  This drill arms the worst
correlated failure the placement model allows — an entire failure
domain (one full UA+IA shard) crashing at once — at the most awkward
instant: while another shard is mid-split, with overload protection
armed.  It asserts:

* **zero aborted calls** — the dead shard's key ranges fail over to
  ring siblings (and every retry/hedge re-rolls its nonce, hence its
  shard), so clients ride over the outage on the normal retry path;
* **the anonymity floor holds** — every shuffle batch *released*
  while traffic flows has size >= S, and the effective anonymity
  gauge (flush size x the flushing shard's live IA count) never drops
  below S*I; crash drains discard, they never release;
* **the split never aborts** — the supervisor's handoff barrier
  (keys/epochs provisioned before the ring flips, pre-flip batches
  drained on the source) completes normally despite the chaos;
* **nothing leaks** — epoch/trace/shard-tag/reject/redaction audits
  all come back clean, and the directory's routing keys are provably
  request nonces.

Determinism: virtual clock + named RNG streams + blake2b ring points,
so a fixed seed reproduces the identical drill and (in a fresh
process) byte-identical telemetry artifacts — the CI job diffs two
separate invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.context import Deployment, SimContext
from repro.faults import FaultSupervisor, NetworkFaultController
from repro.fleet.placement import domain_kill_plan, placement_violations
from repro.fleet.service import build_fleet
from repro.fleet.supervisor import FleetSupervisor
from repro.lrs.service import HarnessService
from repro.obs.slo import Objective, SloEngine, histogram_quantile
from repro.overload import OverloadPolicy
from repro.privacy.adversary import Adversary
from repro.privacy.wire import (
    RejectAuditor,
    epoch_tag_exposures,
    shard_routing_violations,
    trace_field_exposures,
)
from repro.proxy.config import PProxConfig
from repro.simnet.metrics import LatencyRecorder
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import Injector

__all__ = [
    "FleetDrillResult",
    "run_fleet_drill",
    "fleet_slo_objectives",
    "default_fleet_config",
    "default_fleet_overload",
]


def default_fleet_config() -> PProxConfig:
    """Per-shard sizing: I=2 per layer, S=4, a shuffle timeout the
    post-split per-instance rate still comfortably beats (so released
    flushes stay full-size while traffic flows)."""
    return PProxConfig(
        ua_instances=2,
        ia_instances=2,
        shuffle_size=4,
        shuffle_timeout=0.35,
        balancing="round-robin",
    )


def default_fleet_overload() -> OverloadPolicy:
    """Overload protection armed wide: bounds are generous enough that
    the drill's load shouldn't shed, but every queue, admission check
    and breaker is live (a shed would still be pre-shuffle only)."""
    return OverloadPolicy(
        ingress_capacity=256,
        max_inflight=64,
        admission_max_sojourn=0.5,
        admission_max_pressure=4.0,
    )


@dataclass
class FleetDrillResult:
    """Outcome of one shard-loss-mid-split drill."""

    seed: int
    rps: float
    duration: float
    split_at: float
    kill_at: float
    outage: float
    #: Workload outcome.
    issued: int = 0
    completed: int = 0
    failed: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    retries_performed: int = 0
    hedges_launched: int = 0
    retryable_errors: int = 0
    timeouts: int = 0
    #: Injected damage and recovery.
    crashes_injected: int = 0
    restarts_completed: int = 0
    ejections: int = 0
    readmissions: int = 0
    reprovisions: int = 0
    #: Directory routing evidence.
    routed: int = 0
    failovers: int = 0
    #: Split progress.
    shards_initial: int = 0
    shards_final: int = 0
    splits_started: int = 0
    splits_completed: int = 0
    split_started_at: Optional[float] = None
    split_flipped_at: Optional[float] = None
    split_completed_at: Optional[float] = None
    kill_time: Optional[float] = None
    pauses: int = 0
    pause_reasons: Dict[str, int] = field(default_factory=dict)
    ticks: int = 0
    #: Anonymity evidence (window = while traffic flows).
    shuffle_size: int = 0
    instances_per_shard: int = 0
    window_flushes: int = 0
    min_window_flush: Optional[int] = None
    min_effective_anonymity: Optional[int] = None
    shed_total: int = 0
    #: Audits.
    tag_exposures: List[str] = field(default_factory=list)
    trace_exposures: List[str] = field(default_factory=list)
    shard_violations: List[str] = field(default_factory=list)
    reject_violations: List[str] = field(default_factory=list)
    placement_problems: List[str] = field(default_factory=list)
    audit_violations: int = 0
    #: Structured ``fleet`` events in emission order.
    fleet_events: List[Dict[str, Any]] = field(default_factory=list)
    slo_report: Optional[Any] = None

    @property
    def required_anonymity(self) -> int:
        """The S*I bound (I = live IA instances per shard)."""
        return self.shuffle_size * max(1, self.instances_per_shard)

    @property
    def goodput(self) -> float:
        return self.completed / self.issued if self.issued else 0.0

    def problems(self) -> List[str]:
        """Acceptance-check failures (empty when the drill passed)."""
        found: List[str] = []
        if self.failed:
            found.append(f"{self.failed} client call(s) aborted during the drill")
        if self.goodput < 0.9:
            found.append(
                f"post-failover goodput {self.goodput:.3f} < 0.9"
                f" ({self.completed}/{self.issued})"
            )
        expected_crashes = 2 * self.instances_per_shard
        if self.crashes_injected != expected_crashes:
            found.append(
                f"{self.crashes_injected} crashes injected; a whole-domain kill"
                f" is {expected_crashes}"
            )
        if self.restarts_completed != self.crashes_injected:
            found.append(
                f"{self.crashes_injected} crashes but only"
                f" {self.restarts_completed} restarts completed"
            )
        if self.ejections < self.crashes_injected:
            found.append(
                f"only {self.ejections} ejections for {self.crashes_injected} crashes"
            )
        if self.readmissions < self.ejections:
            found.append(
                f"{self.ejections} ejections but only {self.readmissions} readmissions"
            )
        if self.splits_completed < 1:
            found.append("the split never completed")
        if (
            self.kill_time is not None
            and self.split_started_at is not None
            and self.split_completed_at is not None
            and not (self.split_started_at <= self.kill_time <= self.split_completed_at)
        ):
            found.append(
                f"domain kill at {self.kill_time:.2f} missed the split window"
                f" [{self.split_started_at:.2f}, {self.split_completed_at:.2f}]"
            )
        if self.failovers == 0:
            found.append("the directory never failed a nonce over to a sibling shard")
        if self.window_flushes == 0:
            found.append("no shuffle batch was released while traffic flowed")
        elif self.min_window_flush is not None and self.min_window_flush < self.shuffle_size:
            found.append(
                f"anonymity floor violated: a batch of {self.min_window_flush}"
                f" (< S={self.shuffle_size}) was released mid-drill"
            )
        if (
            self.min_effective_anonymity is not None
            and self.min_effective_anonymity < self.required_anonymity
        ):
            found.append(
                f"effective anonymity gauge dipped to {self.min_effective_anonymity}"
                f" < S*I={self.required_anonymity}"
            )
        if self.tag_exposures:
            found.append(f"epoch tag exposed: {self.tag_exposures[0]}")
        if self.trace_exposures:
            found.append(f"trace id exposed: {self.trace_exposures[0]}")
        if self.shard_violations:
            found.append(f"shard routing audit: {self.shard_violations[0]}")
        if self.reject_violations:
            found.append(f"reject uniformity audit: {self.reject_violations[0]}")
        if self.placement_problems:
            found.append(f"placement audit: {self.placement_problems[0]}")
        if self.audit_violations:
            found.append(f"redaction audit found {self.audit_violations} leak(s)")
        return found

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (fleet_events excluded; see artifact)."""
        return {
            "seed": self.seed,
            "rps": self.rps,
            "duration": self.duration,
            "split_at": self.split_at,
            "kill_at": self.kill_at,
            "outage": self.outage,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": round(self.goodput, 6),
            "outcomes": dict(self.outcomes),
            "retries_performed": self.retries_performed,
            "hedges_launched": self.hedges_launched,
            "retryable_errors": self.retryable_errors,
            "timeouts": self.timeouts,
            "crashes_injected": self.crashes_injected,
            "restarts_completed": self.restarts_completed,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "reprovisions": self.reprovisions,
            "routed": self.routed,
            "failovers": self.failovers,
            "shards_initial": self.shards_initial,
            "shards_final": self.shards_final,
            "splits_started": self.splits_started,
            "splits_completed": self.splits_completed,
            "split_started_at": self.split_started_at,
            "split_flipped_at": self.split_flipped_at,
            "split_completed_at": self.split_completed_at,
            "kill_time": self.kill_time,
            "pauses": self.pauses,
            "pause_reasons": dict(self.pause_reasons),
            "ticks": self.ticks,
            "shuffle_size": self.shuffle_size,
            "instances_per_shard": self.instances_per_shard,
            "window_flushes": self.window_flushes,
            "min_window_flush": self.min_window_flush,
            "min_effective_anonymity": self.min_effective_anonymity,
            "required_anonymity": self.required_anonymity,
            "shed_total": self.shed_total,
            "tag_exposure_count": len(self.tag_exposures),
            "trace_exposure_count": len(self.trace_exposures),
            "shard_violation_count": len(self.shard_violations),
            "reject_violation_count": len(self.reject_violations),
            "placement_problem_count": len(self.placement_problems),
            "audit_violations": self.audit_violations,
            "fleet_event_count": len(self.fleet_events),
        }


def fleet_slo_objectives(
    required_anonymity: float,
    goodput_floor: float = 0.9,
    p99_ceiling: float = 2.5,
) -> List[Objective]:
    """The fleet drill's objectives: failover goodput, the hard S*I
    floor, and a bounded client-observed tail."""
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=goodput_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls completed despite the domain kill.",
        ),
        Objective(
            name="anonymity_floor",
            kind="floor",
            target=required_anonymity,
            value="anonymity_floor",
            description="min released flush x live IA of the flushing shard.",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling,
            value="p99_latency_seconds",
            description="p99 of client-observed end-to-end latency.",
        ),
    ]


def run_fleet_drill(
    seed: int = 23,
    rps: float = 360.0,
    duration: float = 10.0,
    *,
    split_at: float = 2.0,
    kill_at: float = 2.25,
    outage: float = 1.2,
    shards: int = 2,
    kill_shard: str = "s1",
    split_shard: str = "s0",
    preload_events: int = 160,
    config: Optional[PProxConfig] = None,
    overload: Optional[OverloadPolicy] = None,
    telemetry: Optional[Telemetry] = None,
    slo: Optional[SloEngine] = None,
    grace: float = 6.0,
) -> FleetDrillResult:
    """Run the shard-loss-mid-split drill once.

    Timeline (relative to traffic start): the supervisor begins
    splitting *split_shard* at *split_at*; at *kill_at* — inside the
    split's handoff window — every instance of *kill_shard*'s failure
    domain crashes for *outage* seconds.
    """
    telemetry = telemetry if telemetry is not None else Telemetry(scrape_interval=1.0)
    ctx = SimContext.fresh(seed, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label=f"fleet/seed{seed}")

    harness = HarnessService(
        loop=ctx.loop, rng=ctx.rng.stream("lrs"), frontend_count=3
    )
    harness.engine.trainer.llr_threshold = 0.0
    fleet_config = config if config is not None else default_fleet_config()
    policy = overload if overload is not None else default_fleet_overload()
    fleet = build_fleet(
        ctx,
        fleet_config,
        harness.pick_frontend,
        shards=shards,
        overload=policy,
        vnodes=128,
    )
    deployment = Deployment(ctx=ctx, service=fleet, config=fleet_config)

    adversary = Adversary()
    adversary.attach(ctx.network)
    adversary.observe_lrs(harness.engine.store)
    reject_auditor = RejectAuditor()
    ctx.network.add_wiretap(reject_auditor.observe)

    client = deployment.client(
        request_timeout=0.9,
        max_retries=5,
        backoff_base=0.05,
        backoff_jitter=0.02,
        hedge_delay=0.4,
    )

    netfaults = NetworkFaultController(
        network=ctx.network, rng=ctx.rng.stream("netfaults")
    )
    fault_supervisor = FaultSupervisor(
        loop=ctx.loop, service=fleet, netfaults=netfaults, telemetry=telemetry
    )
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, telemetry=telemetry,
        tick_interval=0.1, drain_grace=0.5,
    )

    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"),
        recorder=LatencyRecorder("fleet"),
    )
    instrument_stack(
        telemetry,
        service=fleet,
        provider=ctx.resolved_provider(),
        lrs=harness,
        injector=injector,
        network=ctx.network,
        client=client,
        supervisor=fault_supervisor,
    )

    # Released-flush evidence: (time, size, live IA of the flushing
    # shard at release).  Chained AFTER instrument_stack so telemetry's
    # own hooks keep firing; shards born mid-run (the split target)
    # are hooked through on_shard_added.
    flush_samples: List[Tuple[float, int, int]] = []

    def hook_shard(shard) -> None:
        for instance in shard.instances():
            buffer = getattr(instance, "request_buffer", None) or getattr(
                instance, "response_buffer", None
            )
            if buffer is None:
                continue
            previous_hook = buffer.on_flush

            def on_flush(
                size: int, timer_fired: bool, chained=previous_hook, _shard=shard
            ) -> None:
                if chained is not None:
                    chained(size, timer_fired)
                flush_samples.append((ctx.loop.now, size, _shard.live_ia_count))

            buffer.on_flush = on_flush

    for shard in fleet.directory.shards.values():
        hook_shard(shard)
    fleet.on_shard_added = hook_shard

    # Store + train before the drill (bare loop.run() terminates: no
    # periodic machinery has started yet).
    users = [f"user-{index}" for index in range(40)]
    items = [f"item-{index}" for index in range(12)]
    seed_rng = ctx.rng.stream("preload")
    for index in range(preload_events):
        client.post(users[index % len(users)], seed_rng.choice(items))
    ctx.loop.run()
    harness.train()

    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        if user_rng.random() < 0.2:
            client.post(
                user_rng.choice(users), user_rng.choice(items),
                on_complete=on_complete,
            )
        else:
            client.get(user_rng.choice(users), on_complete=on_complete)

    start, end = injector.inject(rps, duration, issue)

    if slo is not None:
        if slo.telemetry is None:
            slo.telemetry = telemetry
        latency_hist = telemetry.registry.histogram(
            "pprox_request_latency_seconds",
            "End-to-end client-observed request latency.",
        )

        def anonymity_floor_source() -> Optional[float]:
            gauges = [
                size * ia_count
                for at, size, ia_count in flush_samples
                if start <= at <= end
            ]
            if not gauges:
                return None
            return float(min(gauges))

        slo.track("issued", lambda: injector.report.issued)
        slo.track("completed", lambda: injector.report.completed)
        slo.track("anonymity_floor", anonymity_floor_source)
        slo.track(
            "p99_latency_seconds", lambda: histogram_quantile(latency_hist, 0.99)
        )
        slo.attach(ctx.loop, until=end + grace)

    kill_domain = fleet.directory.shards[kill_shard].domain
    plan = domain_kill_plan(fleet, kill_domain, at=kill_at, outage=outage)
    fault_supervisor.arm(plan.shifted(start))
    supervisor.start()
    ctx.loop.schedule(
        max(0.0, start + split_at - ctx.loop.now),
        lambda: supervisor.split(split_shard),
    )
    ctx.loop.run_until(end + grace)
    supervisor.stop()
    ctx.loop.run()

    window_samples = [
        (at, size, ia_count)
        for at, size, ia_count in flush_samples
        if start <= at <= end
    ]
    split_ops = [op for op in supervisor.operations if op.kind == "split"]
    split_op = split_ops[0] if split_ops else None
    shed_total = sum(
        getattr(instance, "requests_shed", 0)
        for instance in fleet.ua_instances + fleet.ia_instances
    )
    result = FleetDrillResult(
        seed=seed, rps=rps, duration=duration,
        split_at=split_at, kill_at=kill_at, outage=outage,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        outcomes=dict(client.outcomes),
        retries_performed=client.retries_performed,
        hedges_launched=client.hedges_launched,
        retryable_errors=client.retryable_errors,
        timeouts=client.timeouts,
        crashes_injected=fault_supervisor.crashes_injected,
        restarts_completed=fault_supervisor.restarts_completed,
        ejections=supervisor.ejections,
        readmissions=supervisor.readmissions,
        reprovisions=supervisor.reprovisions,
        routed=fleet.directory.routed,
        failovers=fleet.directory.failovers,
        shards_initial=shards,
        shards_final=sum(
            1 for s in fleet.directory.shards.values() if s.state == "live"
        ),
        splits_started=supervisor.splits_started,
        splits_completed=supervisor.splits_completed,
        split_started_at=split_op.started_at if split_op else None,
        split_flipped_at=split_op.flipped_at if split_op else None,
        split_completed_at=split_op.completed_at if split_op else None,
        kill_time=start + kill_at,
        pauses=supervisor.pauses,
        pause_reasons=dict(supervisor.pause_reasons),
        ticks=supervisor.ticks,
        shuffle_size=fleet_config.shuffle_size,
        instances_per_shard=fleet.instances_per_shard,
        window_flushes=len(window_samples),
        min_window_flush=(
            min(size for _, size, _ in window_samples) if window_samples else None
        ),
        min_effective_anonymity=(
            min(size * ia for _, size, ia in window_samples)
            if window_samples
            else None
        ),
        shed_total=shed_total,
        tag_exposures=epoch_tag_exposures(adversary.observations),
        trace_exposures=trace_field_exposures(adversary.observations),
        shard_violations=shard_routing_violations(
            fleet.directory, adversary.observations
        ),
        reject_violations=reject_auditor.violations(),
        placement_problems=placement_violations(fleet),
        audit_violations=len(telemetry.audit()),
        fleet_events=[
            event.to_dict()
            for event in telemetry.event_log.events
            if event.kind == "fleet"
        ],
    )
    if slo is not None:
        result.slo_report = slo.evaluate(
            fleet_slo_objectives(float(result.required_anonymity)),
            experiment="fleet",
        )
    telemetry.finalize_run(
        extra={"scenario": "fleet", "seed": seed, **result.to_dict()}
    )
    return result
