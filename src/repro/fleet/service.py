"""Assembly of the sharded proxy fleet.

:class:`ShardedPProxService` extends :class:`PProxService` with a
:class:`~repro.fleet.ring.ShardDirectory`: instead of one UA pool and
one IA pool, the fleet runs N shards, each a failure-domain-isolated
UA/IA pair group with its own balancers.  Clients route per attempt
via :meth:`entry_for` (nonce-keyed, see ``repro.fleet.ring``); every
instance also joins the inherited global lists and balancers so the
fault supervisor, telemetry instruments and legacy ``entry()`` callers
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from repro.crypto.keys import KeyFactory
from repro.fleet.placement import domain_node
from repro.fleet.ring import Shard, ShardDirectory
from repro.proxy.config import PProxConfig
from repro.proxy.layers import ItemAnonymizer, ProxyRuntime, UserAnonymizer
from repro.proxy.service import (
    IA_CODE_IDENTITY,
    UA_CODE_IDENTITY,
    PProxService,
    _cached_layer_keys,
)
from repro.rest.codec import resolve_codec
from repro.rest.messages import Request
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.provisioning import KeyProvisioner
from repro.simnet.loadbalancer import LoadBalancer, make_policy

__all__ = [
    "ShardedPProxService",
    "build_fleet",
]


@dataclass
class ShardedPProxService(PProxService):
    """A PProx service whose instances are grouped into ring shards."""

    directory: ShardDirectory = field(default_factory=ShardDirectory)
    #: UA (= IA) instances provisioned per shard — the paper's I.
    instances_per_shard: int = 1
    #: Called after a shard is fully provisioned (drills chain flush
    #: hooks onto shards created mid-run through this).
    on_shard_added: Optional[Callable[[Shard], None]] = None
    _shard_seq: int = 0

    @property
    def shards(self) -> Dict[str, Shard]:
        """Live view of the directory's shard table."""
        return self.directory.shards

    def entry_for(self, request: Request) -> UserAnonymizer:
        """Pick the UA serving *request*, routed by its nonce.

        The ring key is ``request.request_id`` — the per-attempt
        counter nonce — never anything user-derived.
        """
        shard = self.directory.route(request.request_id)
        return shard.ua_balancer.pick()

    def shard_of(
        self, instance: Union[UserAnonymizer, ItemAnonymizer]
    ) -> Optional[Shard]:
        """The shard owning *instance* (None for non-fleet instances)."""
        for shard in self.directory.shards.values():
            if instance in shard.ua_instances or instance in shard.ia_instances:
                return shard
        return None

    # -- shard lifecycle (driven by the FleetSupervisor) ----------------

    def add_shard(
        self, *, domain: Optional[str] = None, activate: bool = True
    ) -> Shard:
        """Provision one full shard: I IA + I UA instances, own
        balancers, own failure domain.

        Keys and attestation complete for every enclave *before* the
        shard can be activated on the ring — the handoff barrier the
        supervisor relies on during splits.  With ``activate=False``
        the shard is registered but takes no traffic until
        :meth:`ShardDirectory.activate` flips the ring.
        """
        shard_id = f"s{self._shard_seq}"
        self._shard_seq += 1
        if domain is None:
            domain = f"fd-{shard_id}"
        rng = self.runtime.rng
        shard = Shard(
            shard_id=shard_id,
            domain=domain,
            ua_balancer=LoadBalancer(
                name=f"client->ua[{shard_id}]",
                policy=make_policy(self.config.balancing, rng),
            ),
            ia_balancer=LoadBalancer(
                name=f"ua->ia[{shard_id}]",
                policy=make_policy(self.config.balancing, rng),
            ),
            created_at=self.runtime.loop.now,
        )
        for index in range(self.instances_per_shard):
            enclave = Enclave(
                name=f"ia-enclave-{shard_id}-{index}",
                measurement=EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
                host_node=domain_node(domain, "IA", index),
            )
            self.provisioner.provision("IA", enclave)
            instance = ItemAnonymizer(
                name=f"pprox-ia-{shard_id}-{index}",
                runtime=self.runtime,
                enclave=enclave,
                lrs_picker=self.lrs_picker,
            )
            shard.ia_instances.append(instance)
            shard.ia_balancer.add(instance)
            self.ia_instances.append(instance)
            self.ia_balancer.add(instance)
            self.runtime.network.register_role(instance.address, "ia")
        for index in range(self.instances_per_shard):
            enclave = Enclave(
                name=f"ua-enclave-{shard_id}-{index}",
                measurement=EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
                host_node=domain_node(domain, "UA", index),
            )
            self.provisioner.provision("UA", enclave)
            instance = UserAnonymizer(
                name=f"pprox-ua-{shard_id}-{index}",
                runtime=self.runtime,
                enclave=enclave,
                ia_balancer=shard.ia_balancer,
            )
            shard.ua_instances.append(instance)
            shard.ua_balancer.add(instance)
            self.ua_instances.append(instance)
            self.ua_balancer.add(instance)
            self.runtime.network.register_role(instance.address, "ua")
        self.directory.register(shard)
        if activate:
            shard.set_state("live")
            self.directory.activate(shard_id)
        if self.on_shard_added is not None:
            self.on_shard_added(shard)
        return shard

    def remove_shard(self, shard: Shard) -> None:
        """Retire a drained shard: pull its instances out of service.

        The caller (supervisor) must have deactivated the shard on the
        ring and drained its in-flight batches first.
        """
        if shard.shard_id in self.directory.ring:
            raise ValueError(
                f"shard {shard.shard_id} is still on the ring; deactivate first"
            )
        for instance in shard.ua_instances:
            if instance in self.ua_balancer.backends:
                self.ua_balancer.remove(instance)
            if instance in self.ua_instances:
                self.ua_instances.remove(instance)
        for instance in shard.ia_instances:
            if instance in self.ia_balancer.backends:
                self.ia_balancer.remove(instance)
            if instance in self.ia_instances:
                self.ia_instances.remove(instance)
        shard.set_state("retired")

    # -- failure recovery ----------------------------------------------

    def restart_instance(
        self, instance: Union[UserAnonymizer, ItemAnonymizer]
    ) -> Union[UserAnonymizer, ItemAnonymizer]:
        """Restart preserving failure-domain placement.

        The stock restart path names the fresh enclave's host after the
        instance; a fleet restart must keep the node inside the shard's
        failure domain or the placement audit would flag it.
        """
        shard = self.shard_of(instance)
        if shard is None:
            return super().restart_instance(instance)
        if instance in shard.ua_instances:
            layer, identity = "UA", UA_CODE_IDENTITY
        else:
            layer, identity = "IA", IA_CODE_IDENTITY
        next_generation = instance.generation + 1
        enclave = Enclave(
            name=f"{instance.name}-enclave-g{next_generation}",
            measurement=EnclaveMeasurement.of_code(identity),
            host_node=f"node-{shard.domain}-{layer.lower()}-g{next_generation}",
        )
        self.provisioner.provision(layer, enclave)
        instance.restart(enclave)
        self.restarts += 1
        return instance


def build_fleet(
    ctx,
    config: PProxConfig,
    lrs_picker: Callable[[], object],
    *,
    shards: int = 2,
    instances_per_shard: Optional[int] = None,
    rsa_bits: int = 1024,
    overload=None,
    codec=None,
    vnodes: int = 64,
) -> ShardedPProxService:
    """Deploy a sharded fleet on a :class:`repro.context.SimContext`.

    ``config.ua_instances`` / ``ia_instances`` are reinterpreted as the
    per-shard instance count I (override with *instances_per_shard*);
    the fleet starts with *shards* live shards, each in its own
    failure domain.
    """
    if shards < 1:
        raise ValueError("a fleet needs at least one shard")
    per_shard = instances_per_shard if instances_per_shard is not None else config.ua_instances
    if per_shard < 1:
        raise ValueError("each shard needs at least one instance per layer")
    rng = ctx.rng
    provider = ctx.resolved_provider()

    factory = KeyFactory(
        rsa_bits=rsa_bits,
        rng_int=rng.int_fn("keygen"),
        rng_bytes=rng.bytes_fn("keygen-bytes"),
    )
    ua_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "UA")
    ia_keys = _cached_layer_keys(factory, rng.seed, rsa_bits, "IA")

    attestation = AttestationService(rng_bytes=rng.bytes_fn("attestation"))
    provisioner = KeyProvisioner(
        attestation=attestation,
        expected_measurements={
            "UA": EnclaveMeasurement.of_code(UA_CODE_IDENTITY),
            "IA": EnclaveMeasurement.of_code(IA_CODE_IDENTITY),
        },
        layer_keys={"UA": ua_keys, "IA": ia_keys},
        rng_bytes=rng.bytes_fn("provisioning"),
    )
    runtime = ProxyRuntime(
        loop=ctx.loop,
        network=ctx.network,
        rng=rng.stream("proxy"),
        provider=provider,
        config=config,
        costs=ctx.costs,
        telemetry=ctx.telemetry,
        overload=overload,
        codec=resolve_codec(codec) if codec is not None else ctx.resolved_codec(),
        ia_public=lambda: provisioner.layer_keys["IA"].public_material,
    )
    fleet = ShardedPProxService(
        runtime=runtime,
        provisioner=provisioner,
        attestation=attestation,
        ua_balancer=LoadBalancer(
            name="client->ua", policy=make_policy(config.balancing, rng.stream("lb-ua"))
        ),
        ia_balancer=LoadBalancer(
            name="ua->ia", policy=make_policy(config.balancing, rng.stream("lb-ia"))
        ),
        lrs_picker=lrs_picker,
        directory=ShardDirectory(vnodes=vnodes),
        instances_per_shard=per_shard,
    )
    for _ in range(shards):
        fleet.add_shard()
    return fleet
