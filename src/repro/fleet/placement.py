"""Failure-domain-aware placement for the sharded fleet.

Every shard's instances land on nodes of one named failure domain
(rack / AZ in the deployment analogy), and no two shards share a
domain.  That makes the blast radius of a correlated ``FaultPlan``
crash — a whole rack dying — exactly one shard: the directory fails
the dead shard's key ranges over to ring siblings whose released
flushes keep their own S*I floor, instead of every shard losing one
instance and all of them flushing short.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.faults.plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.service import ShardedPProxService

__all__ = [
    "domain_node",
    "domain_kill_plan",
    "placement_violations",
]


def domain_node(domain: str, layer: str, index: int) -> str:
    """Node name binding an instance to its shard's failure domain."""
    return f"node-{domain}-{layer.lower()}-{index}"


def domain_kill_plan(
    fleet: "ShardedPProxService",
    domain: str,
    *,
    at: float,
    outage: float,
) -> FaultPlan:
    """Correlated crash of every instance placed in *domain*.

    One :class:`FaultEvent` per instance, all at the same instant —
    the whole-rack kill the drill arms mid-split.  Restart after
    *outage* seconds is the fault supervisor's normal recovery path.
    """
    events: List[FaultEvent] = []
    for shard in fleet.shards.values():
        if shard.domain != domain:
            continue
        for instance in shard.instances():
            events.append(
                FaultEvent(at=at, kind="crash", target=instance.name, duration=outage)
            )
    if not events:
        raise ValueError(f"no instances placed in failure domain {domain!r}")
    return FaultPlan(tuple(events))


def placement_violations(fleet: "ShardedPProxService") -> List[str]:
    """Placement invariant check — empty list means clean.

    * no two shards share a failure domain;
    * every instance's host node belongs to its shard's domain.
    """
    problems: List[str] = []
    owner: Dict[str, str] = {}
    for shard in fleet.shards.values():
        previous = owner.get(shard.domain)
        if previous is not None and previous != shard.shard_id:
            problems.append(
                f"shards {previous} and {shard.shard_id} share failure "
                f"domain {shard.domain}"
            )
        owner.setdefault(shard.domain, shard.shard_id)
        prefix = f"node-{shard.domain}-"
        for instance in shard.instances():
            host = instance.enclave.host_node
            if not host.startswith(prefix):
                problems.append(
                    f"instance {instance.name} of shard {shard.shard_id} "
                    f"placed on {host}, outside domain {shard.domain}"
                )
    return problems
