"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info``            — package overview and the experiment index;
* ``reproduce``       — regenerate tables/figures (wraps the example CLI);
* ``demo``            — run the quickstart scenario;
* ``validate``        — check the experiment index against the tree;
* ``telemetry-smoke`` — short end-to-end run with full telemetry,
  writes the per-run artifact and self-checks traces + redaction;
* ``chaos-smoke``     — seeded fault-injection drill: crashes, partitions,
  drops, delay spikes and an LRS brownout against a live deployment;
  asserts the availability floor, full recovery and a clean redaction
  audit, and writes the telemetry artifact (byte-identical across
  same-seed invocations — CI diffs two runs);
* ``overload-smoke``  — offered-load sweep at 0.5x/1x/2x capacity with
  and without the overload-protection stack; asserts graceful
  degradation (goodput retention, bounded p99), pre-shuffle-only
  shedding (anonymity >= S*I), uniform rejects on protected hops and a
  clean redaction audit; writes the goodput/latency/shed-rate artifact
  (byte-identical across same-seed invocations — CI diffs two runs);
* ``rekey-smoke``     — live key-rotation drill: rotates the UA layer's
  keys under traffic with a crash and a partition injected mid-window;
  asserts zero aborted requests, the S*I anonymity floor on every
  released batch, pause-and-resume after the crash, no cross-epoch
  pseudonym linkage and a clean redaction audit; writes the telemetry
  artifact (byte-identical across same-seed invocations — CI diffs
  two runs);
* ``obs-smoke``       — observability gate: runs the causal-tracing /
  profiler / SLO micro scenario twice with one seed and byte-diffs the
  deterministic artifacts (``profile.json``, ``profile.folded``,
  ``trace.jsonl``, ``slo.json``), proves no trace id survives past the
  UA shuffle boundary, then replays the chaos / overload / rotation /
  scale experiments under live (or static) SLO engines and asserts
  every ``slo.json`` verdict — the anonymity-floor objective above
  all — holds;
* ``profile``         — run the observability micro scenario under the
  deterministic virtual-time profiler and print the hottest causal
  scheduling stacks (writes ``profile.json`` / ``profile.folded`` /
  ``profile_meta.json``);
* ``scale-smoke``     — million-user Figure-8-shaped proxy-scaling
  sweep (1M synthetic users, 100k RPS sustained at the top point) on
  the calendar-queue engine; writes a deterministic ``scale.json``
  (byte-identical across same-seed runs *and* across engines — CI
  diffs a calendar run against a reference-engine run) plus a
  non-diffable ``scale_meta.json`` with events/sec and wall time;
* ``wire-smoke``      — codec parity gate: runs one seeded traffic mix
  under the legacy object wire, the pinned JSON codec and the binary
  codec (batch envelopes armed), writes a timing-free semantic
  artifact per run (request outcomes + privacy.wire auditor verdicts)
  and asserts all three are identical — the wire format must change
  bytes, never results (CI runs this as the codec-parity job);
* ``fleet-smoke``     — self-healing sharded-fleet drill: a whole
  failure domain (one full UA+IA shard) is killed mid-split with
  overload protection armed; asserts zero aborted calls, post-failover
  goodput >= 0.9, every released flush >= S, the effective anonymity
  gauge >= S*I, a completed split, and clean epoch/trace/shard-tag/
  reject/redaction/placement audits; writes ``fleet.json`` plus the
  telemetry artifact (byte-identical across same-seed invocations —
  CI diffs two runs);
* ``capacity``        — capacity planner: for each (target RPS, p99
  SLO) point solves (shards, I, S) from the measured per-pair knee,
  then verifies the plan twice in simulation — fault-free for the
  steady-state SLO and with chaos + overload armed for graceful
  degradation — each leg judged by an ``obs.slo`` verdict; writes a
  deterministic ``capacity.json`` and a non-diffable meta report;
* ``simnet-bench``    — event-loop micro-benchmarks (calendar engine
  vs seed reference heap); writes/refreshes ``BENCH_simnet.json`` and
  enforces the recorded perf floors.
"""

from __future__ import annotations

__all__ = ["main"]

import argparse
import sys


def _cmd_info(_args) -> int:
    import repro
    from repro.experiments.registry import EXPERIMENT_INDEX

    print(f"repro {repro.__version__} — PProx reproduction (Middleware '21)")
    print()
    print("experiment index:")
    for experiment in EXPERIMENT_INDEX.values():
        print(f"  {experiment.identifier:10s} {experiment.title}")
        print(f"  {'':10s}   bench: {experiment.bench}")
    print()
    print("see README.md / DESIGN.md / EXPERIMENTS.md for details")
    return 0


def _cmd_reproduce(args) -> int:
    import pathlib
    import runpy
    import sys as _sys

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "reproduce_figures.py"
    _sys.argv = [str(script)] + args.targets + (["--full"] if args.full else [])
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _cmd_demo(_args) -> int:
    import pathlib
    import runpy

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _cmd_validate(_args) -> int:
    from repro.experiments.registry import validate_index

    problems = validate_index()
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        return 1
    print("experiment index OK: all modules import, all benches exist")
    return 0


def _cmd_telemetry_smoke(args) -> int:
    """Short micro run with full telemetry; self-checks the artifact.

    Exercises the acceptance criteria of the telemetry layer: every
    completed request yields a complete five-stage trace, span-derived
    stage durations match the wire-level BreakdownProbe, the JSONL
    artifact round-trips, and the redaction audit is clean.
    """
    from repro.cluster.deployments import MICRO_CONFIGS
    from repro.experiments.runner import run_micro
    from repro.experiments.report import render_telemetry
    from repro.simnet.tracing import STAGES, BreakdownProbe
    from repro.telemetry import EventLog, Telemetry, audit_events

    telemetry = Telemetry(scrape_interval=1.0)
    probe = BreakdownProbe()
    config = MICRO_CONFIGS[args.config]
    result = run_micro(
        config, args.rps, seed=args.seed, runs=1,
        duration=args.duration, trim=2.0,
        telemetry=telemetry, probe=probe,
    )
    completed = sum(report.completed for report in result.reports)
    print(render_telemetry(telemetry))
    print()

    failures = []
    traces = telemetry.tracer.complete_traces()
    if not traces:
        failures.append("no complete traces collected")
    elif len(traces) < completed:
        failures.append(
            f"only {len(traces)} complete traces for {completed} completed requests"
        )
    for trace in traces:
        missing = [stage for stage in STAGES if stage not in trace.stages]
        if missing:
            failures.append(f"trace {trace.trace_id} missing stages: {missing}")
            break

    span_values = telemetry.tracer.stage_values()
    probe_values = probe.stage_values()
    for stage in STAGES:
        spans = sorted(span_values.get(stage, []))
        wire = sorted(probe_values.get(stage, []))
        if len(spans) != len(wire):
            failures.append(
                f"stage {stage}: {len(spans)} span durations vs {len(wire)} wire durations"
            )
            continue
        drift = max(
            (abs(a - b) for a, b in zip(spans, wire)), default=0.0
        )
        if drift > 1e-9:
            failures.append(f"stage {stage}: span/wire drift {drift:.3e}s")

    paths = telemetry.write_artifact(args.telemetry_dir)
    with open(paths["events"], "r", encoding="utf-8") as handle:
        records = EventLog.parse_jsonl(handle.read())
    if not records:
        failures.append("telemetry artifact has no events")
    leaks = audit_events(records)
    if leaks:
        failures.append(f"redaction audit found {len(leaks)} leak(s) in artifact")
        for violation in leaks[:10]:
            print(f"  LEAK: {violation.describe()}")

    print(f"artifact: {paths['events']} ({len(records)} events)")
    print(f"artifact: {paths['metrics']}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"telemetry smoke OK: {len(traces)} complete traces,"
        f" {completed} completed requests, artifact parses, audit clean"
    )
    return 0


def _cmd_chaos_smoke(args) -> int:
    """Seeded chaos drill with availability + recovery self-checks."""
    from repro.experiments.chaos import run_chaos
    from repro.telemetry import Telemetry

    telemetry = Telemetry(scrape_interval=1.0)
    result = run_chaos(
        seed=args.seed,
        rps=args.rps,
        duration=args.duration,
        availability_floor=args.availability_floor,
        telemetry=telemetry,
    )
    summary = result.to_dict()
    print("chaos drill summary")
    print("===================")
    for key in (
        "seed", "issued", "completed", "failed", "availability",
        "crashes_injected", "restarts_completed", "failovers", "readmissions",
        "partition_drops", "random_drops", "delays_injected",
        "brownout_rejected", "brownout_slowed",
        "retries_performed", "hedges_launched", "timeouts",
    ):
        print(f"  {key:22s} {summary[key]}")
    print(f"  {'outcomes':22s} {summary['outcomes']}")

    paths = telemetry.write_artifact(args.telemetry_dir)
    print(f"artifact: {paths['events']} ({len(result.fault_events)} fault events)")
    print(f"artifact: {paths['metrics']}")

    problems = result.problems()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"chaos smoke OK: availability {result.availability:.3f}"
        f" >= {result.availability_floor:.2f},"
        f" {result.crashes_injected} crashes recovered, audit clean"
    )
    return 0


def _cmd_overload_smoke(args) -> int:
    """Offered-load sweep with graceful-degradation self-checks."""
    from repro.experiments.overload import run_overload
    from repro.telemetry import Telemetry

    telemetry = Telemetry(scrape_interval=1.0)
    result = run_overload(
        seed=args.seed,
        duration=args.duration,
        capacity_rps=args.capacity_rps,
        telemetry=telemetry,
    )
    print("overload sweep summary")
    print("======================")
    print(f"  {'seed':14s} {result.seed}")
    print(f"  {'capacity_rps':14s} {result.capacity_rps}")
    print(f"  {'shuffle_size':14s} {result.shuffle_size}")
    header = (
        f"  {'offered':>8s} {'variant':>9s} {'issued':>7s} {'goodput':>8s}"
        f" {'p50':>8s} {'p99':>8s} {'sheds':>6s} {'anon>=':>7s}"
    )
    print(header)
    for point in result.points:
        variant = "protect" if point.protected else "baseline"
        anonymity = (
            f"{point.anonymity_floor:.0f}/{point.required_anonymity:.0f}"
            if point.min_flush_during_load is not None
            else "-"
        )
        print(
            f"  {point.offered_rps:8.1f} {variant:>9s} {point.issued:7d}"
            f" {point.goodput_rps:8.2f} {point.p50_seconds:8.4f}"
            f" {point.p99_seconds:8.4f} {point.shed_total:6d} {anonymity:>7s}"
        )

    paths = telemetry.write_artifact(args.telemetry_dir)
    print(f"artifact: {paths['events']}")
    print(f"artifact: {paths['metrics']}")

    problems = result.problems()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    saturation = result.point(protected=True, multiplier=1.0)
    overloaded = result.point(protected=True, multiplier=2.0)
    print(
        f"overload smoke OK: goodput at 2x {overloaded.goodput_rps:.1f} rps"
        f" (saturation {saturation.goodput_rps:.1f}),"
        f" {overloaded.shed_total} sheds, anonymity floor held, audit clean"
    )
    return 0


def _cmd_rekey_smoke(args) -> int:
    """Live rotation drill with zero-downtime + anonymity self-checks."""
    from repro.experiments.rotation import run_rotation
    from repro.telemetry import Telemetry

    telemetry = Telemetry(scrape_interval=1.0)
    result = run_rotation(
        seed=args.seed,
        rps=args.rps,
        duration=args.duration,
        announce_at=args.announce_at,
        telemetry=telemetry,
    )
    summary = result.to_dict()
    print("rotation drill summary")
    print("======================")
    for key in (
        "seed", "issued", "completed", "failed",
        "old_epoch", "new_epoch", "final_state", "window_seconds",
        "pauses", "pause_reasons", "reprovisions",
        "rekey_events_processed", "previous_epoch_decrypts",
        "epoch_tags_seen", "epoch_bumps",
        "crashes_injected", "restarts_completed", "partition_drops",
        "min_window_flush", "effective_anonymity_floor", "required_anonymity",
        "cross_epoch_user_overlap",
    ):
        print(f"  {key:26s} {summary[key]}")
    print(f"  {'outcomes':26s} {summary['outcomes']}")

    paths = telemetry.write_artifact(args.telemetry_dir)
    print(f"artifact: {paths['events']} ({len(result.rotation_events)} rotation events)")
    print(f"artifact: {paths['metrics']}")

    problems = result.problems()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"rekey smoke OK: epoch {result.old_epoch}->{result.new_epoch} retired"
        f" in a {result.window_seconds:.2f}s window, 0 aborted calls,"
        f" anonymity floor {result.effective_anonymity_floor}"
        f" >= {result.required_anonymity}, audit clean"
    )
    return 0


def _cmd_obs_smoke(args) -> int:
    """Observability gate: determinism diff + severing + SLO verdicts."""
    import dataclasses
    import os

    from repro.experiments.chaos import run_chaos
    from repro.experiments.overload import run_overload
    from repro.experiments.rotation import run_rotation
    from repro.experiments.scale import SMOKE_CONFIG, run_scale_sweep, scale_slo_verdict
    from repro.obs import (
        SloEngine,
        diff_artifact_dirs,
        run_obs_scenario,
        write_obs_artifacts,
        write_slo,
    )
    from repro.telemetry import Telemetry

    failures = []

    # -- 1. two same-seed passes of the micro scenario, byte-diffed ----
    print(f"obs scenario: two passes at seed {args.seed}")
    results = []
    for index in (1, 2):
        result = run_obs_scenario(seed=args.seed)
        write_obs_artifacts(result, os.path.join(args.out_dir, f"pass{index}"))
        results.append(result)
    first = results[0]
    print(
        f"  issued={first.issued} completed={first.completed}"
        f" attempts_stamped={first.link['attempts_stamped']}"
        f" severed={first.link['traces_severed']}"
        f" batch_spans={first.link['batch_spans']}"
    )
    for problem in first.problems():
        failures.append(f"obs scenario: {problem}")
    diffs = diff_artifact_dirs(
        os.path.join(args.out_dir, "pass1"), os.path.join(args.out_dir, "pass2")
    )
    for diff in diffs:
        failures.append(f"determinism: {diff}")
    if not diffs:
        print("  deterministic artifacts byte-identical across passes")

    # -- 2. each experiment under an SLO engine; verdicts must hold ----
    verdicts = {}
    if not args.fast:
        chaos_slo = SloEngine()
        chaos_result = run_chaos(
            seed=7, rps=60.0, duration=12.0,
            telemetry=Telemetry(scrape_interval=1.0), slo=chaos_slo,
        )
        verdicts["chaos"] = chaos_result.slo_report

        overload_slo = SloEngine()
        overload_result = run_overload(
            seed=7, duration=6.0,
            telemetry=Telemetry(scrape_interval=1.0), slo=overload_slo,
        )
        verdicts["overload"] = overload_result.slo_report

        rotation_slo = SloEngine()
        rotation_result = run_rotation(
            seed=11, rps=140.0, duration=10.0,
            telemetry=Telemetry(scrape_interval=1.0), slo=rotation_slo,
        )
        verdicts["rotation"] = rotation_result.slo_report

        scale_config = dataclasses.replace(
            SMOKE_CONFIG, users=100_000, pairs_sweep=(1,), duration=2.0
        )
        scale_artifact, _meta = run_scale_sweep(scale_config)
        verdicts["scale"] = scale_slo_verdict(scale_artifact)

        for name, report in verdicts.items():
            path = write_slo(report, os.path.join(args.out_dir, name))
            floor = report.objective("anonymity_floor")
            status = "ok" if report.ok else "FAIL"
            print(
                f"  {name:9s} slo {status}: anonymity_floor"
                f" {floor.value} vs target {floor.target} -> {path}"
            )
            if not report.ok:
                for problem in report.problems():
                    failures.append(f"{name}: {problem}")
            elif not floor.ok:
                failures.append(f"{name}: anonymity floor objective failed")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    checked = ", ".join(verdicts) if verdicts else "scenario only (--fast)"
    print(
        f"obs smoke OK: artifacts deterministic, {first.link['traces_severed']}"
        f" traces severed at the shuffle boundary, 0 exposures,"
        f" slo verdicts hold ({checked})"
    )
    return 0


def _cmd_profile(args) -> int:
    """Deterministic virtual-time profile of the obs micro scenario."""
    from repro.obs import run_obs_scenario, write_obs_artifacts
    from repro.obs.profiler import profile_snapshot

    result = run_obs_scenario(
        seed=args.seed, rps=args.rps, duration=args.duration
    )
    paths = write_obs_artifacts(result, args.out_dir)
    snapshot = profile_snapshot(result.loop)
    print(
        f"profiled {snapshot['events_processed']} events over"
        f" {snapshot['final_virtual_time']:.2f} virtual seconds"
    )
    ranked = sorted(
        snapshot["sites"].items(), key=lambda kv: kv[1]["calls"], reverse=True
    )
    print(f"top {min(args.top, len(ranked))} causal stacks by calls:")
    for key, record in ranked[: args.top]:
        print(
            f"  {record['calls']:8d} calls"
            f" {record['virtual_delay_seconds']:10.4f}s vdelay  {key}"
        )
    print(f"artifact: {paths['profile.json']}")
    print(f"artifact: {paths['profile.folded']} (collapsed stacks, flamegraph-ready)")
    print(f"artifact: {paths['profile_meta.json']} (wall clock, do not diff)")
    return 0


def _cmd_scale_smoke(args) -> int:
    """Million-user proxy-scaling sweep on the selected engine."""
    import dataclasses

    from repro.experiments.scale import FULL_CONFIG, SMOKE_CONFIG, run_scale_sweep, write_artifacts

    base = SMOKE_CONFIG if args.reduced else FULL_CONFIG
    overrides = {"engine": args.engine, "seed": args.seed}
    if args.users is not None:
        overrides["users"] = args.users
    if args.duration is not None:
        overrides["duration"] = args.duration
    config = dataclasses.replace(base, **overrides)
    print(
        f"scale sweep: engine={config.engine} users={config.users:,}"
        f" pairs={config.pairs_sweep} peak={config.peak_rps:,.0f} rps"
        f" duration={config.duration}s"
    )
    artifact, meta = run_scale_sweep(config)
    for point, point_meta in zip(artifact["points"], meta["points"]):
        latency = point["latency"]
        print(
            f"  pairs={point['pairs']} offered={point['offered_rps']:10,.0f} rps"
            f" completed={point['completed']:8d}"
            f" med={latency['median'] * 1000:6.2f}ms p99={latency['p99'] * 1000:6.2f}ms"
            f" | {point_meta['events_per_second']:10,.0f} ev/s"
            f" wall={point_meta['wall_seconds']:6.1f}s"
        )
    artifact_path, meta_path = write_artifacts(artifact, meta, args.out_dir)
    print(f"artifact: {artifact_path} (deterministic, engine-independent)")
    print(f"artifact: {meta_path} (wall-clock numbers, do not diff)")

    failures = []
    for point in artifact["points"]:
        if point["expired"]:
            failures.append(f"pairs={point['pairs']}: {point['expired']} requests missed the deadline")
        if point["completed"] != point["issued"]:
            failures.append(
                f"pairs={point['pairs']}: {point['issued'] - point['completed']} requests lost"
            )
    total_wall = meta["total_wall_seconds"]
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"scale smoke OK: {sum(p['issued'] for p in artifact['points']):,} requests,"
        f" {meta['total_events']:,} events in {total_wall:.1f}s wall"
    )
    return 0


def _cmd_wire_smoke(args) -> int:
    """Codec-parity gate: one scenario, three wire formats.

    Runs the same seeded traffic mix under the legacy object wire
    (``codec=None``), :class:`JsonCodec` and :class:`BinaryCodec`
    (batch envelopes armed), with an adversary wiretap attached.  For
    each run it writes a timing-free semantic artifact — per-request
    outcomes in issue order plus the privacy.wire auditor verdicts —
    and asserts all three are identical: the wire format must change
    bytes, never results, and the binary format must pass the same
    epoch/trace/reject audits as the seed wire.  Binary must also
    actually exercise the batch-envelope path (counters > 0).
    """
    import json as json_module
    import pathlib

    from repro.context import Deployment, SimContext
    from repro.lrs.stub import StubLrs, make_pseudonymous_payload
    from repro.privacy.adversary import Adversary
    from repro.privacy.wire import (
        RejectAuditor,
        epoch_tag_exposures,
        trace_field_exposures,
    )
    from repro.proxy.config import PProxConfig

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    def run_once(codec, harden):
        ctx = SimContext.fresh(seed=args.seed, record_flows=True, codec=codec)
        stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("lrs"))
        config = PProxConfig(shuffle_size=4, harden_client_hop=harden)
        deployment = Deployment.build(ctx=ctx, config=config, lrs_picker=lambda: stub)
        stub.items = make_pseudonymous_payload(
            ctx.resolved_provider(),
            deployment.service.provisioner.layer_keys["IA"].symmetric_key,
        )
        adversary = Adversary()
        adversary.attach(ctx.network)
        rejects = RejectAuditor()
        ctx.network.add_wiretap(rejects.observe)
        client = deployment.client()
        outcomes = [None] * args.requests
        for index in range(args.requests):
            user = f"user-{index % 5}"
            when = 0.4 * (index + 1)

            def deliver(index=index, kind="get"):
                def on_complete(call):
                    items = sorted(str(item) for item in (call.items or ()))
                    outcomes[index] = {"kind": kind, "ok": call.ok, "items": items}
                return on_complete

            if index % 2:
                ctx.loop.schedule_at(when, lambda user=user, index=index: client.post(
                    user, f"item-{index}", on_complete=deliver(index, "post")))
            else:
                ctx.loop.schedule_at(when, lambda user=user, index=index: client.get(
                    user, on_complete=deliver(index)))
        ctx.loop.run_until(0.4 * args.requests + 60.0)
        sealed = sum(i.batch_envelopes_sealed for i in deployment.service.ua_instances)
        opened = sum(i.batch_envelopes_opened for i in deployment.service.ia_instances)
        artifact = {
            "config": {"shuffle_size": 4, "harden_client_hop": harden,
                       "seed": args.seed, "requests": args.requests},
            "outcomes": outcomes,
            "audit": {
                "epoch_tag_exposures": epoch_tag_exposures(adversary.observations),
                "trace_field_exposures": trace_field_exposures(adversary.observations),
                "reject_uniformity": rejects.violations(),
            },
        }
        counters = {"batch_envelopes_sealed": sealed, "batch_envelopes_opened": opened,
                    "observations": len(adversary.observations)}
        return artifact, counters

    failures = []
    for harden in (False, True):
        mode = "hardened" if harden else "default"
        artifacts = {}
        for codec in (None, "json", "binary"):
            label = codec or "legacy"
            artifact, counters = run_once(codec, harden)
            artifacts[label] = artifact
            path = out_dir / f"parity_{mode}_{label}.json"
            path.write_text(json_module.dumps(artifact, indent=2, sort_keys=True) + "\n")
            print(f"{mode:9s} codec={label:7s} "
                  f"ok={sum(1 for o in artifact['outcomes'] if o and o['ok'])}"
                  f"/{len(artifact['outcomes'])}"
                  f" sealed={counters['batch_envelopes_sealed']}"
                  f" opened={counters['batch_envelopes_opened']}"
                  f" observations={counters['observations']}")
            findings = [finding for verdict in artifact["audit"].values()
                        for finding in verdict]
            for finding in findings:
                failures.append(f"{mode}/{label}: audit finding: {finding}")
            if not all(o and o["ok"] for o in artifact["outcomes"]):
                failures.append(f"{mode}/{label}: not every request completed ok")
            if codec == "binary":
                if counters["batch_envelopes_sealed"] == 0:
                    failures.append(f"{mode}/binary: batch envelope path never exercised")
                if counters["batch_envelopes_opened"] != counters["batch_envelopes_sealed"]:
                    failures.append(f"{mode}/binary: sealed/opened counter mismatch")
        for label in ("json", "binary"):
            if artifacts[label] != artifacts["legacy"]:
                failures.append(
                    f"{mode}: semantic artifact under {label} differs from legacy wire"
                )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"wire smoke OK: artifacts in {out_dir} "
          "(legacy == json == binary, audits clean)")
    return 0


def _cmd_fleet_smoke(args) -> int:
    """Sharded-fleet drill: domain loss mid-split, floors + audits."""
    import json as json_module
    import os

    from repro.fleet import run_fleet_drill
    from repro.obs import SloEngine, write_slo
    from repro.telemetry import Telemetry

    telemetry = Telemetry(scrape_interval=1.0)
    slo = SloEngine()
    result = run_fleet_drill(
        seed=args.seed,
        rps=args.rps,
        duration=args.duration,
        telemetry=telemetry,
        slo=slo,
    )
    summary = result.to_dict()
    print("fleet drill summary")
    print("===================")
    for key in (
        "seed", "issued", "completed", "failed", "goodput",
        "crashes_injected", "restarts_completed", "ejections", "readmissions",
        "routed", "failovers", "shards_initial", "shards_final",
        "splits_started", "splits_completed",
        "split_started_at", "split_flipped_at", "split_completed_at",
        "kill_time", "pauses", "pause_reasons",
        "window_flushes", "min_window_flush",
        "min_effective_anonymity", "required_anonymity", "shed_total",
    ):
        print(f"  {key:24s} {summary[key]}")
    print(f"  {'outcomes':24s} {summary['outcomes']}")

    os.makedirs(args.telemetry_dir, exist_ok=True)
    fleet_path = os.path.join(args.telemetry_dir, "fleet.json")
    with open(fleet_path, "w") as handle:
        json_module.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    paths = telemetry.write_artifact(args.telemetry_dir)
    print(f"artifact: {fleet_path}")
    print(f"artifact: {paths['events']} ({len(result.fleet_events)} fleet events)")
    print(f"artifact: {paths['metrics']}")
    if result.slo_report is not None:
        slo_path = write_slo(result.slo_report, args.telemetry_dir)
        print(f"artifact: {slo_path}")

    problems = result.problems()
    if result.slo_report is not None and not result.slo_report.ok:
        problems.extend(result.slo_report.problems())
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"fleet smoke OK: domain kill at {result.kill_time:.2f}s inside split"
        f" [{result.split_started_at:.2f}, {result.split_completed_at:.2f}],"
        f" 0 aborted calls, {result.failovers} failovers,"
        f" anonymity floor {result.min_effective_anonymity}"
        f" >= {result.required_anonymity}, audits clean"
    )
    return 0


def _cmd_capacity(args) -> int:
    """Capacity planner: solve (shards, I, S) per target, verify both legs."""
    from repro.experiments.capacity import (
        DEFAULT_TARGETS,
        CapacityTarget,
        run_capacity,
        write_artifacts,
    )

    targets = DEFAULT_TARGETS
    if args.targets:
        parsed = []
        for spec in args.targets:
            rps_text, _, slo_text = spec.partition(":")
            parsed.append(CapacityTarget(rps=float(rps_text), p99_slo=float(slo_text)))
        targets = tuple(parsed)

    artifact, meta, results = run_capacity(
        targets, seed=args.seed, duration=args.duration
    )
    print("capacity plan verification")
    print("==========================")
    header = (
        f"  {'target':>7s} {'p99 slo':>8s} {'mode':>6s} {'shards':>6s} {'I':>3s}"
        f" {'S':>3s} {'goodput':>8s} {'p99':>8s} {'min S':>6s} {'ok':>4s}"
    )
    print(header)
    for result in results:
        floor = (
            result.min_steady_flush if result.mode == "chaos" else result.min_released_flush
        )
        p99 = "-" if result.p99_latency_seconds is None else f"{result.p99_latency_seconds:.3f}"
        print(
            f"  {result.target.rps:7.0f} {result.target.p99_slo:8.2f}"
            f" {result.mode:>6s} {result.plan.shards:6d}"
            f" {result.plan.instances_per_shard:3d} {result.plan.shuffle_size:3d}"
            f" {result.goodput:8.4f} {p99:>8s}"
            f" {floor if floor is not None else '-':>6} {'yes' if result.ok else 'NO':>4s}"
        )

    artifact_path, meta_path = write_artifacts(artifact, meta, args.out_dir)
    print(f"artifact: {artifact_path} (deterministic)")
    print(f"artifact: {meta_path} (wall-clock numbers, do not diff)")

    problems = [problem for result in results for problem in result.problems()]
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"capacity OK: {len(targets)} planning points solved and verified"
        f" (clean + chaos legs), all slo verdicts hold"
    )
    return 0


def _cmd_simnet_bench(args) -> int:
    """Event-loop perf floors (delegates to benchmarks/run_simnet_bench.py)."""
    import pathlib
    import runpy
    import sys as _sys

    script = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "run_simnet_bench.py"
    _sys.argv = [str(script)] + (["--output", args.output] if args.output else [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exit_info:
        return int(exit_info.code or 0)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("info", help="package overview").set_defaults(fn=_cmd_info)
    reproduce = subparsers.add_parser("reproduce", help="regenerate tables/figures")
    reproduce.add_argument("targets", nargs="*", default=["table2", "table3"])
    reproduce.add_argument("--full", action="store_true")
    reproduce.set_defaults(fn=_cmd_reproduce)
    subparsers.add_parser("demo", help="run the quickstart").set_defaults(fn=_cmd_demo)
    subparsers.add_parser("validate", help="check the experiment index").set_defaults(
        fn=_cmd_validate
    )
    smoke = subparsers.add_parser(
        "telemetry-smoke", help="short e2e run with telemetry self-checks"
    )
    smoke.add_argument("--telemetry-dir", default="results/telemetry-smoke",
                       help="directory for the telemetry.jsonl/.prom artifact")
    smoke.add_argument("--config", default="m6", choices=("m1", "m2", "m3", "m4", "m5", "m6"),
                       help="micro configuration to run (default: m6, full pipeline)")
    smoke.add_argument("--rps", type=float, default=40.0)
    smoke.add_argument("--duration", type=float, default=8.0)
    smoke.add_argument("--seed", type=int, default=7)
    smoke.set_defaults(fn=_cmd_telemetry_smoke)
    chaos = subparsers.add_parser(
        "chaos-smoke", help="seeded fault-injection drill with recovery checks"
    )
    chaos.add_argument("--telemetry-dir", default="results/chaos-smoke",
                       help="directory for the telemetry.jsonl/.prom artifact")
    chaos.add_argument("--rps", type=float, default=60.0)
    chaos.add_argument("--duration", type=float, default=12.0)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--availability-floor", type=float, default=0.9)
    chaos.set_defaults(fn=_cmd_chaos_smoke)
    overload = subparsers.add_parser(
        "overload-smoke", help="offered-load sweep with degradation checks"
    )
    overload.add_argument("--telemetry-dir", default="results/overload-smoke",
                          help="directory for the telemetry.jsonl/.prom artifact")
    overload.add_argument("--capacity-rps", type=float, default=85.0,
                          help="estimated saturation rate the sweep multiplies")
    overload.add_argument("--duration", type=float, default=6.0)
    overload.add_argument("--seed", type=int, default=7)
    overload.set_defaults(fn=_cmd_overload_smoke)
    rekey = subparsers.add_parser(
        "rekey-smoke", help="live key-rotation drill with zero-downtime checks"
    )
    rekey.add_argument("--telemetry-dir", default="results/rekey-smoke",
                       help="directory for the telemetry.jsonl/.prom artifact")
    rekey.add_argument("--rps", type=float, default=140.0)
    rekey.add_argument("--duration", type=float, default=10.0)
    rekey.add_argument("--announce-at", type=float, default=2.0)
    rekey.add_argument("--seed", type=int, default=11)
    rekey.set_defaults(fn=_cmd_rekey_smoke)
    obs = subparsers.add_parser(
        "obs-smoke", help="observability gate: determinism diff + severing + SLOs"
    )
    obs.add_argument("--out-dir", default="results/obs-smoke",
                     help="directory for pass1/ pass2/ and per-experiment slo.json")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--fast", action="store_true",
                     help="skip the experiment SLO replays (scenario + diff only)")
    obs.set_defaults(fn=_cmd_obs_smoke)
    profile = subparsers.add_parser(
        "profile", help="deterministic virtual-time profile of the obs scenario"
    )
    profile.add_argument("--out-dir", default="results/profile",
                         help="directory for profile.json/.folded/_meta.json")
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--rps", type=float, default=80.0)
    profile.add_argument("--duration", type=float, default=4.0)
    profile.add_argument("--top", type=int, default=12,
                         help="causal stacks to print (by call count)")
    profile.set_defaults(fn=_cmd_profile)
    scale = subparsers.add_parser(
        "scale-smoke", help="million-user proxy-scaling sweep (engine showcase)"
    )
    scale.add_argument("--out-dir", default="results/scale-smoke",
                       help="directory for scale.json / scale_meta.json")
    scale.add_argument("--engine", default="calendar", choices=("calendar", "reference"),
                       help="event-loop engine to run the sweep on")
    scale.add_argument("--reduced", action="store_true",
                       help="CI-sized configuration (200k users, 2 points, 3s)")
    scale.add_argument("--users", type=int, default=None,
                       help="override the synthetic user population")
    scale.add_argument("--duration", type=float, default=None,
                       help="override the per-point injection window (s)")
    scale.add_argument("--seed", type=int, default=20260808)
    scale.set_defaults(fn=_cmd_scale_smoke)
    wire = subparsers.add_parser(
        "wire-smoke", help="codec parity gate: legacy vs json vs binary wire"
    )
    wire.add_argument("--out-dir", default="results/wire-smoke",
                      help="directory for the per-codec parity artifacts")
    wire.add_argument("--seed", type=int, default=42)
    wire.add_argument("--requests", type=int, default=24,
                      help="requests per run (alternating get/post)")
    wire.set_defaults(fn=_cmd_wire_smoke)
    fleet = subparsers.add_parser(
        "fleet-smoke", help="sharded-fleet drill: domain loss mid-split"
    )
    fleet.add_argument("--telemetry-dir", default="results/fleet-smoke",
                       help="directory for fleet.json + telemetry artifacts")
    fleet.add_argument("--rps", type=float, default=360.0)
    fleet.add_argument("--duration", type=float, default=10.0)
    fleet.add_argument("--seed", type=int, default=23)
    fleet.set_defaults(fn=_cmd_fleet_smoke)
    capacity = subparsers.add_parser(
        "capacity", help="capacity planner: solve (shards, I, S) and verify"
    )
    capacity.add_argument("--out-dir", default="results/capacity",
                          help="directory for capacity.json / capacity_meta.json")
    capacity.add_argument("--seed", type=int, default=11)
    capacity.add_argument("--duration", type=float, default=8.0,
                          help="injection window per verification leg (s)")
    capacity.add_argument("--targets", nargs="*", default=None, metavar="RPS:P99",
                          help="planning points, e.g. 500:0.5 (default: 3 canonical)")
    capacity.set_defaults(fn=_cmd_capacity)
    bench = subparsers.add_parser(
        "simnet-bench", help="event-loop perf floors (BENCH_simnet.json)"
    )
    bench.add_argument("--output", default=None,
                       help="where to write the benchmark report JSON")
    bench.set_defaults(fn=_cmd_simnet_bench)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
