"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info``        — package overview and the experiment index;
* ``reproduce``   — regenerate tables/figures (wraps the example CLI);
* ``demo``        — run the quickstart scenario;
* ``validate``    — check the experiment index against the tree.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args) -> int:
    import repro
    from repro.experiments.registry import EXPERIMENT_INDEX

    print(f"repro {repro.__version__} — PProx reproduction (Middleware '21)")
    print()
    print("experiment index:")
    for experiment in EXPERIMENT_INDEX.values():
        print(f"  {experiment.identifier:10s} {experiment.title}")
        print(f"  {'':10s}   bench: {experiment.bench}")
    print()
    print("see README.md / DESIGN.md / EXPERIMENTS.md for details")
    return 0


def _cmd_reproduce(args) -> int:
    import pathlib
    import runpy
    import sys as _sys

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "reproduce_figures.py"
    _sys.argv = [str(script)] + args.targets + (["--full"] if args.full else [])
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _cmd_demo(_args) -> int:
    import pathlib
    import runpy

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _cmd_validate(_args) -> int:
    from repro.experiments.registry import validate_index

    problems = validate_index()
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        return 1
    print("experiment index OK: all modules import, all benches exist")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("info", help="package overview").set_defaults(fn=_cmd_info)
    reproduce = subparsers.add_parser("reproduce", help="regenerate tables/figures")
    reproduce.add_argument("targets", nargs="*", default=["table2", "table3"])
    reproduce.add_argument("--full", action="store_true")
    reproduce.set_defaults(fn=_cmd_reproduce)
    subparsers.add_parser("demo", help="run the quickstart").set_defaults(fn=_cmd_demo)
    subparsers.add_parser("validate", help="check the experiment index").set_defaults(
        fn=_cmd_validate
    )
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
