"""Security drill: a side-channel attack against a PProx enclave.

Walks through the paper's adversary model end-to-end:

1. live traffic flows through the deployment while the adversary taps
   every network link and reads the LRS database;
2. the adversary mounts a cache-timing campaign against one IA
   enclave (completion time: tens of simulated minutes, §2.3);
3. a Varys-style breach detector notices the performance anomaly and
   triggers the breach response (key rotation, footnote 1);
4. at each stage we compute the *closure* of what the adversary can
   link — demonstrating that user-interest unlinkability holds.

Also demonstrates the model's boundary: if both layers' secrets are
stolen simultaneously (outside the adversary model), everything links.

Run:  python examples/breach_drill.py
"""

from __future__ import annotations

from repro.client import PProxClient
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import RealCryptoProvider
from repro.lrs import HarnessService
from repro.privacy import Adversary, KnowledgeEngine
from repro.proxy import DEFAULT_COSTS, PProxConfig, build_pprox
from repro.sgx import BreachDetector, SideChannelAttack
from repro.simnet import EventLoop, Network, RngRegistry

TASTES = {
    "alice": ["thriller-1", "thriller-2", "docu-1"],
    "bob": ["thriller-1", "thriller-3"],
    "carol": ["docu-1", "docu-2", "thriller-2"],
}
CATALOG = {item for items in TASTES.values() for item in items}


def main() -> None:
    rng = RngRegistry(seed=99)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    provider = RealCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng, PProxConfig(shuffle_size=3, shuffle_timeout=0.1),
        lrs_picker=harness.pick_frontend, provider=provider,
    )
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))

    adversary = Adversary()
    adversary.attach(network)
    adversary.observe_lrs(harness.engine.store)

    def closure() -> set:
        engine = KnowledgeEngine.for_adversary(adversary, provider, catalog=CATALOG)
        return engine.derive_links(adversary.observations, adversary.lrs_dump())

    print("phase 1: normal operation under full network observation")
    for user, items in TASTES.items():
        for item in items:
            client.post(user, item)
    loop.run()
    harness.train()
    for user in TASTES:
        client.get(user)
    loop.run()
    print(f"  observed flows: {len(adversary.flow_records)},"
          f" LRS rows: {len(adversary.lrs_dump())}")
    print(f"  derivable (user, item) links: {len(closure())}  <- nothing\n")

    print("phase 2: side-channel campaign against an IA enclave")
    target = service.ia_instances[0].enclave
    attack = SideChannelAttack(
        loop=loop, target=target, duration=1800.0,
        on_success=lambda secrets: adversary.harvest_enclave("IA", target),
    )

    factory = KeyFactory(rsa_bits=1024, rng_int=rng.int_fn("rot"),
                         rng_bytes=rng.bytes_fn("rot-b"))

    def respond(enclave) -> None:
        layer = "UA" if enclave.name.startswith("ua") else "IA"
        print(f"  [detector] anomaly on {enclave.name} at t={loop.now:.0f}s"
              f" -> rotating {layer} keys, dropping stale LRS state,"
              f" aborting campaign")
        # Footnote 1, option 1: fresh keys + drop the pseudonymous DB
        # (its pseudonyms were minted under the retired keys).
        service.breach_response(layer, factory, lrs_store=harness.engine.store)
        harness.train()
        adversary.drop_secrets(layer)
        attack.abort()

    detector = BreachDetector(loop=loop, enclaves=service.all_enclaves(),
                              response=respond, sampling_interval=30.0,
                              confirmation_samples=3)
    detector.start()
    attack.launch()
    print(f"  attack launched at t={loop.now:.0f}s"
          f" (completes in {attack.duration:.0f}s if undetected;"
          f" enclave slowed {attack.performance_penalty:.0f}x)")
    loop.run_until(loop.now + 600.0)
    detector.stop()
    print(f"  campaign aborted: {attack.aborted};"
          f" enclave compromised: {target.compromised}")
    print(f"  derivable links: {len(closure())}  <- detection beat the attack\n")

    print("phase 3: assume the worst — a later campaign DOES finish")
    target.mark_compromised()
    adversary.harvest_enclave("IA", target)
    # Users keep using the service after the (undetected) compromise.
    for user, items in TASTES.items():
        client.post(user, items[0])
        client.get(user)
    loop.run()
    engine = KnowledgeEngine.for_adversary(adversary, provider, catalog=CATALOG)
    at_enclave = engine.derive_links(
        adversary.messages_at("pprox-ia"), adversary.lrs_dump()
    )
    print("  IA secrets stolen; derivable links at the paper's observation")
    print(f"  points (messages at the IA enclave + LRS db): {len(at_enclave)}  <- §6.1 case 2 holds")
    links = closure()
    print(f"  full-wire closure (reproduction finding, see EXPERIMENTS.md): {len(links)}")
    print("  -> enable PProxConfig(harden_client_hop=True) to close the wire variant\n")

    print("phase 4: outside the model — both layers at once")
    engine = KnowledgeEngine(
        provider=provider,
        ua_keys=service.provisioner.layer_keys["UA"],
        ia_keys=service.provisioner.layer_keys["IA"],
        catalog=CATALOG,
    )
    links = engine.derive_links(adversary.observations, adversary.lrs_dump())
    print(f"  derivable links: {len(links)} — e.g. {sorted(links)[:3]}")
    print("  (this is why the single-enclave-at-a-time assumption, backed by")
    print("   detection + rotation, is load-bearing)")


if __name__ == "__main__":
    main()
