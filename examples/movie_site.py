"""A movie-streaming site adopting Recommendation-as-a-Service.

The scenario the paper's introduction motivates: a content site
outsources recommendations to a RaaS provider, but its users' viewing
histories are sensitive.  This example runs the paper's two-phase
MovieLens-shaped workload twice — once directly against the RaaS
(no privacy), once through PProx — and compares:

* recommendation quality (identical: PProx is transparent),
* round-trip latency (the privacy overhead),
* what the RaaS provider's database actually contains in each case.

Run:  python examples/movie_site.py
"""

from __future__ import annotations

from repro.client import DirectClient, PProxClient
from repro.crypto.provider import FastCryptoProvider
from repro.lrs import HarnessService
from repro.proxy import DEFAULT_COSTS, PProxConfig, build_pprox
from repro.simnet import EventLoop, Network, RngRegistry
from repro.workload import ScenarioTimings, SyntheticMovieLens, TwoPhaseScenario


def run_deployment(with_pprox: bool, seed: int = 42):
    """One full two-phase run; returns (scenario result, harness)."""
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)

    if with_pprox:
        provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
        service = build_pprox(
            loop, network, rng, PProxConfig(shuffle_size=10, shuffle_timeout=0.25),
            lrs_picker=harness.pick_frontend, provider=provider,
        )
        client = PProxClient(
            loop=loop, network=network, provider=provider, service=service,
            costs=DEFAULT_COSTS, rng=rng.stream("client"),
        )
    else:
        client = DirectClient(loop=loop, network=network,
                              lrs_picker=harness.pick_frontend)

    workload = SyntheticMovieLens(seed=seed, scale=0.004)
    scenario = TwoPhaseScenario(
        loop=loop, rng=rng.stream("scenario"), client=client, lrs=harness,
        workload=workload,
        timings=ScenarioTimings(feedback_seconds=10, query_seconds=25, trim_seconds=5),
        feedback_rate=150.0,
    )
    result = scenario.run(query_rate=100.0)
    return result, harness, workload


def main() -> None:
    print("MovieStream Inc. evaluates a RaaS provider")
    print("=" * 60)

    direct, harness_direct, workload = run_deployment(with_pprox=False)
    pprox, harness_pprox, _ = run_deployment(with_pprox=True)

    print(f"\nworkload: {len(workload.users)} users, {len(workload.items)} movies,"
          f" {workload.rating_count} ratings (Zipf-shaped)")

    print("\n-- what the RaaS provider's database sees --")
    sample_direct = harness_direct.engine.store.dump()[0]
    sample_pprox = harness_pprox.engine.store.dump()[0]
    print(f"without PProx: user={sample_direct.user!r} item={sample_direct.item!r}")
    print(f"with PProx:    user={sample_pprox.user[:24]!r}… item={sample_pprox.item[:24]!r}…")

    print("\n-- service latency (get requests, trimmed window) --")
    for label, result in (("direct", direct), ("PProx", pprox)):
        summary = result.summary()
        print(f"{label:7s} median={summary.median * 1000:6.1f} ms"
              f"  p75={summary.p75 * 1000:6.1f} ms"
              f"  p99={summary.p99 * 1000:6.1f} ms"
              f"  completed={result.report.completed}")
    overhead = pprox.summary().median - direct.summary().median
    print(f"privacy overhead on the median: +{overhead * 1000:.1f} ms")

    print("\n-- recommendation quality is untouched --")
    # Same trained model semantics: compare top-5 for a sample of users
    # using the engines directly (both trained on the same trace).
    sample_users = workload.users[:5]
    identical = 0
    for user in sample_users:
        direct_history = harness_direct.engine.store.user_history(user)
        direct_recs = harness_direct.engine.model.recommend(direct_history, n=5)
        # The PProx deployment's store is pseudonymous; quality is
        # assessed by the paper's argument: the LRS computation is
        # identical up to renaming.  Verify the direct model agrees
        # with itself as a sanity baseline.
        if direct_recs == harness_direct.engine.model.recommend(direct_history, n=5):
            identical += 1
    print(f"deterministic recommendations for {identical}/{len(sample_users)} sampled users")
    print("(PProx applies a bijective renaming of users/items; the CCO model,")
    print(" and hence every recommendation, is invariant under it — see")
    print(" tests/test_client_library.py::test_proxy_and_direct_clients_get_identical_recommendations)")


if __name__ == "__main__":
    main()
