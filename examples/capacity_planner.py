"""Capacity planning for a PProx deployment.

Operations-facing scenario: given an expected request rate, how many
proxy instances per layer are needed, and what latency should the SLO
budget expect?  Sweeps deployment sizes against rates (the Figure 8
grid), then demonstrates the elastic autoscaler following a traffic
ramp, as §5 prescribes ("the two proxy layers need to elastically
scale up and down based on observed request load").

Run:  python examples/capacity_planner.py
"""

from __future__ import annotations

from repro.client import PProxClient
from repro.cluster import ElasticScaler
from repro.cluster.deployments import MICRO_CONFIGS
from repro.experiments.runner import run_micro
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import DEFAULT_COSTS, PProxConfig, build_pprox
from repro.simnet import EventLoop, Network, RngRegistry
from repro.workload import Injector


def sweep_capacity() -> None:
    """Offline planning table: instances vs sustainable rate."""
    print("capacity sweep (stub LRS, S=10, 15 s windows)")
    print(f"{'pairs':>6s} {'rps':>6s} {'median ms':>10s} {'p99 ms':>8s} {'ok':>4s}")
    for name in ("m6", "m7", "m8", "m9"):
        config = MICRO_CONFIGS[name]
        for rps in (50, config.max_rps, config.max_rps + 150):
            result = run_micro(config, rps, seed=5, runs=1, duration=15.0, trim=4.0)
            summary = result.summary()
            print(
                f"{config.ua_instances:6d} {rps:6.0f}"
                f" {summary.median * 1000:10.1f} {summary.p99 * 1000:8.1f}"
                f" {'no' if result.saturated else 'yes':>4s}"
            )
    print("rule of thumb: ~250 RPS per UA+IA pair before the knee"
          " (the capacity solver plans at 250 RPS/pair with 0.8"
          " utilization headroom); avoid over-provisioning at low"
          " rates (shuffle delay).")
    print("for a solved-and-verified plan per (rps, p99 SLO) point —"
          " shards, instances, shuffle size, clean + chaos legs —"
          " run: python -m repro capacity\n")


def autoscaler_demo() -> None:
    """Live elasticity: the scaler follows a traffic ramp."""
    print("elastic autoscaler following a traffic ramp")
    rng = RngRegistry(seed=6)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    service = build_pprox(
        loop, network, rng, PProxConfig(shuffle_size=10, shuffle_timeout=0.25),
        lrs_picker=lambda: stub,
    )
    stub.items = make_pseudonymous_payload(
        service.runtime.provider, service.provisioner.layer_keys["IA"].symmetric_key
    )
    client = PProxClient(loop=loop, network=network,
                         provider=service.runtime.provider, service=service,
                         costs=DEFAULT_COSTS, rng=rng.stream("client"))
    scaler = ElasticScaler(loop=loop, service=service, interval=5.0,
                           low_rps=60.0, high_rps=220.0, max_instances=4)
    scaler.start()

    injector = Injector(loop, rng.stream("injector"))
    ramp = [(0, 100), (20, 400), (40, 700), (60, 250), (80, 80)]
    for start, rate in ramp:
        injector.inject(rate, 20.0,
                        lambda cb: client.get("user", on_complete=cb),
                        start_at=float(start))
    loop.run_until(105.0)
    scaler.stop()
    loop.run()

    print(f"{'time':>6s} {'layer':>6s} {'action':>11s} {'instances':>10s} {'rps/inst':>9s}")
    for decision in scaler.decisions:
        print(f"{decision.time:6.0f} {decision.layer:>6s} {decision.action:>11s}"
              f" {decision.instances_after:10d}"
              f" {decision.observed_rps_per_instance:9.0f}")
    print(f"final deployment: UA={len(service.ua_instances)}"
          f" IA={len(service.ia_instances)}"
          f" (completed {injector.report.completed}/{injector.report.issued} calls)")


def main() -> None:
    sweep_capacity()
    autoscaler_demo()


if __name__ == "__main__":
    main()
