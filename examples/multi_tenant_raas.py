"""A RaaS provider serving several applications through one PProx.

The §6.3 "Assumption on traffic" scenario: a niche forum alone cannot
fill shuffle buffers at night, so its users eat the flush-timer
latency.  The RaaS provider instead runs *one* shared proxy layer for
all its client applications — aggregated traffic fills batches — with
per-tenant keys so applications stay cryptographically isolated from
each other.  The blast-radius cost the paper warns about is shown at
the end.

Run:  python examples/multi_tenant_raas.py
"""

from __future__ import annotations

from repro.client import PProxClient
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import FastCryptoProvider
from repro.lrs import HarnessService
from repro.proxy import DEFAULT_COSTS, PProxConfig
from repro.simnet import EventLoop, Network, RngRegistry
from repro.tenancy import TenantDirectory, build_multi_tenant_pprox, tenant_slot
from repro.workload import Injector

TENANTS = ("webshop", "forum", "news")


def main() -> None:
    rng = RngRegistry(seed=17)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    factory = KeyFactory(rsa_bits=1024, rng_int=rng.int_fn("keys"),
                         rng_bytes=rng.bytes_fn("keys-b"))

    directory = TenantDirectory()
    harnesses = {}
    for name in TENANTS:
        harness = HarnessService(loop=loop, rng=rng.stream(f"lrs-{name}"),
                                 frontend_count=3, name=f"harness-{name}")
        harness.engine.trainer.llr_threshold = 0.0
        harnesses[name] = harness
        directory.register(
            TenantDirectory.make_tenant(name, factory, harness.pick_frontend)
        )

    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    config = PProxConfig(shuffle_size=10, shuffle_timeout=0.5)
    service = build_multi_tenant_pprox(loop, network, rng, config, directory,
                                       provider=provider)
    clients = {
        name: PProxClient(
            loop=loop, network=network, provider=provider, service=service,
            costs=DEFAULT_COSTS, rng=rng.stream(f"client-{name}"),
            material=directory.record(name).client_material, tenant=name,
        )
        for name in TENANTS
    }

    # Each tenant alone offers only ~15 RPS — far too thin to fill an
    # S=10 buffer quickly.  Together they offer 45 RPS.
    recorders = {name: [] for name in TENANTS}
    injectors = []
    for name in TENANTS:
        injector = Injector(loop, rng.stream(f"inj-{name}"))
        injector.inject(
            15, 20.0,
            lambda cb, c=clients[name]: c.get("user-1", on_complete=cb),
        )
        injectors.append((name, injector))
    loop.run()

    print("shared proxy, S=10, flush timer 0.5 s; per-tenant offered load 15 RPS")
    print(f"{'tenant':>8s} {'completed':>10s} {'median ms':>10s}")
    for name, injector in injectors:
        latencies = sorted(injector.recorder.latencies())
        median = latencies[len(latencies) // 2] * 1000
        print(f"{name:>8s} {injector.report.completed:10d} {median:10.1f}")

    shared_median = sorted(
        latency for _, injector in injectors for latency in injector.recorder.latencies()
    )
    print(f"\naggregated traffic keeps shuffle delay bounded"
          f" (overall median {shared_median[len(shared_median)//2]*1000:.0f} ms;"
          f" a single tenant at 15 RPS alone would wait ~2x the 0.5 s timer).")

    # Cryptographic isolation between tenants:
    print("\nper-tenant pseudonym isolation:")
    clients["webshop"].post("alice", "lamp")
    clients["forum"].post("alice", "lamp")
    loop.run()
    shop_row = harnesses["webshop"].engine.store.dump()[-1]
    forum_row = harnesses["forum"].engine.store.dump()[-1]
    print(f"  webshop sees alice as {shop_row.user[:20]}…")
    print(f"  forum   sees alice as {forum_row.user[:20]}…")
    print("  same person, unlinkable across applications")

    # The paper's warning: one broken shared enclave leaks everyone.
    enclave = service.ua_instances[0].enclave
    enclave.mark_compromised()
    leaked = enclave.leak_secrets()
    from repro.sgx.provisioning import UA_SECRET_K

    exposed = [name for name in TENANTS if tenant_slot(UA_SECRET_K, name) in leaked]
    print(f"\nblast radius of one broken shared UA enclave: {exposed}")
    print("(the multi-tenancy trade-off of §6.3: more traffic, bigger blast radius)")


if __name__ == "__main__":
    main()
