"""Regenerate the paper's tables and figures from the command line.

Usage:
    python examples/reproduce_figures.py            # everything, quick
    python examples/reproduce_figures.py fig6 fig7  # a subset
    python examples/reproduce_figures.py --full     # paper-scale durations

``--full`` uses the paper's 60 s feedback + 300 s query windows and
6 aggregated runs; expect a long wall-clock run (pure-Python event
simulation).  The quick mode reproduces the same shapes in minutes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    render_figure,
    render_table2,
    render_table3,
)
from repro.workload.scenario import ScenarioTimings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("targets", nargs="*",
                        default=["table2", "table3", "fig6", "fig7", "fig8",
                                 "fig9", "fig10"],
                        help="which artefacts to regenerate")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale durations and 6 runs per point")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    if args.full:
        runs, duration, trim = 6, 300.0, 15.0
        timings = ScenarioTimings.paper()
    else:
        runs, duration, trim = 1, 20.0, 5.0
        timings = ScenarioTimings(feedback_seconds=10, query_seconds=30,
                                  trim_seconds=8)

    builders = {
        "table2": lambda: render_table2(),
        "table3": lambda: render_table3(),
        "fig6": lambda: render_figure(
            figure6(seed=args.seed, runs=runs, duration=duration, trim=trim)
        ),
        "fig7": lambda: render_figure(
            figure7(seed=args.seed, runs=runs, duration=duration, trim=trim)
        ),
        "fig8": lambda: render_figure(
            figure8(seed=args.seed, runs=runs, duration=duration, trim=trim)
        ),
        "fig9": lambda: render_figure(
            figure9(seed=args.seed, runs=runs, timings=timings)
        ),
        "fig10": lambda: render_figure(
            figure10(seed=args.seed, runs=runs, timings=timings)
        ),
    }

    for target in args.targets:
        if target not in builders:
            print(f"unknown target {target!r}; choose from {sorted(builders)}")
            return 2
        start = time.perf_counter()
        print(builders[target]())
        print(f"[{target} regenerated in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
