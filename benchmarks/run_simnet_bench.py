"""Emit ``BENCH_simnet.json``: calendar-queue engine vs seed heap loop.

Measures the rebuilt simulation engine
(:class:`repro.simnet.clock.EventLoop`, a calendar queue with lazy
cancellation and batched slot dispatch) against the seed binary-heap
implementation preserved as
:class:`repro.simnet.clock.ReferenceEventLoop`, and writes the results
to ``BENCH_simnet.json`` at the repository root::

    PYTHONPATH=src python benchmarks/run_simnet_bench.py

Three macro workloads, all pure scheduler hot path:

* ``pure_dispatch``    — feed-forward ``post`` chains, the message-
  delivery profile: no cancellations, maximal batched-drain benefit.
* ``mixed_churn``      — the headline mixed scheduler-churn workload:
  open-loop arrivals at 100k RPS where every request schedules a
  deadline timer, a hedge timer and per-hop retransmit timers that are
  all cancelled at completion (the hedging/deadline/CoDel profile the
  proxies generate), plus three fire-and-forget deliveries.
* ``resident_million`` — the same churn with one million live session
  timers resident in the queue, the million-user working set: insert
  depth and memory pressure at scale-sweep size.

GC is disabled inside the measured window (pyperf-style) so the floors
gate scheduler cost, not collector scheduling noise; the report also
records sim-seconds per wall-second and the peak live queue depth.

Floors are calibrated from measured reality with CI headroom.  The
honest like-for-like ceiling against CPython's C-implemented ``heapq``
is ~2-3x on these workloads (the classic calendar-queue 10x results
compare same-language implementations); the end-to-end win at scale is
larger because the engine also removes per-event handle allocation and
unbounded cancelled-entry bloat — see docs/architecture.md.
"""

from __future__ import annotations

import gc
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simnet.clock import EventLoop, ReferenceEventLoop  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simnet.json"

#: Minimum calendar/reference events-per-second ratio per workload.
SPEEDUP_FLOORS = {
    "pure_dispatch": 1.5,
    "mixed_churn": 1.5,
    "resident_million": 1.2,
}

#: Absolute floor on the calendar engine's throughput for the headline
#: workload (conservative: CI runners are slower than dev boxes).
ABSOLUTE_FLOORS_EV_S = {
    "mixed_churn": 100_000.0,
}


def _noop() -> None:
    pass


def pure_dispatch(loop, events: int = 600_000, chains: int = 5_000) -> None:
    """Concurrent delivery chains: post-only, no cancellations.

    *chains* messages are in flight at once (the working set of a
    loaded fabric), each rescheduling itself after a hop latency, so
    slots hold thousands of same-window events and the batched drain
    has real runs to consume.
    """
    state = {"left": events}
    post = loop.post

    def fire() -> None:
        left = state["left"]
        if left <= 0:
            return
        state["left"] = left - 1
        post(0.0004 + (left % 7) * 0.0001, fire)

    for index in range(chains):
        post(index * 0.0000002, fire)
    state["left"] -= chains
    loop.run(max_events=10 * events)


def mixed_churn(loop, requests: int = 250_000, rps: float = 100_000.0) -> None:
    """Open-loop arrivals with hedge/deadline/retransmit timer churn."""
    interval = 1.0 / rps
    schedule_at = loop.schedule_at
    post_at = loop.post_at
    state = {"i": 0}

    def arrival() -> None:
        i = state["i"]
        state["i"] = i + 1
        t = loop.now
        # Per-request cancellable timers: end-to-end deadline, hedge
        # fire, and one retransmit timer per forward hop.
        deadline = schedule_at(t + 10.0, _noop)
        hedge = schedule_at(t + 0.030, _noop)
        retransmits = [
            schedule_at(t + 0.2 + hop * 0.01, _noop) for hop in range(3)
        ]
        # Fire-and-forget deliveries (client->UA, UA->IA, IA->LRS).
        post_at(t + 0.0004, _noop)
        post_at(t + 0.0009, _noop)

        def complete() -> None:
            deadline.cancel()
            hedge.cancel()
            for handle in retransmits:
                handle.cancel()

        post_at(t + 0.0021, complete)
        if i + 1 < requests:
            post_at(t + interval, arrival)

    post_at(0.0, arrival)
    loop.run(max_events=100_000_000)


def resident_million(loop, requests_window: float = 2.5, rps: float = 100_000.0,
                     users: int = 1_000_000) -> None:
    """Mixed churn with one million live session timers resident."""
    schedule_at = loop.schedule_at
    for index in range(users):
        schedule_at(60.0 + (index % 997) * 0.06, _noop)
    interval = 1.0 / rps
    post_at = loop.post_at

    def arrival() -> None:
        t = loop.now
        deadline = schedule_at(t + 10.0, _noop)
        hedge = schedule_at(t + 0.030, _noop)
        post_at(t + 0.0004, _noop)
        post_at(t + 0.0009, _noop)

        def complete() -> None:
            deadline.cancel()
            hedge.cancel()

        post_at(t + 0.0021, complete)
        if t + interval < requests_window:
            post_at(t + interval, arrival)

    post_at(0.0, arrival)
    loop.run_until(requests_window + 1.0)


WORKLOADS = {
    "pure_dispatch": pure_dispatch,
    "mixed_churn": mixed_churn,
    "resident_million": resident_million,
}


def _run_one(engine_cls, workload) -> dict:
    loop = engine_cls()
    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        workload(loop)
        wall = time.perf_counter() - wall_start
    finally:
        gc.enable()
    stats = loop.queue_stats()
    return {
        "events_processed": loop.events_processed,
        "wall_seconds": round(wall, 4),
        "events_per_second": round(loop.events_processed / wall, 1),
        "sim_seconds_per_wall_second": round(loop.now / wall, 3),
        "peak_queue_depth": stats.get("peak_pending"),
        "cancels": stats.get("cancels_total"),
        "compactions": stats.get("compactions"),
    }


def _measure() -> dict:
    results = {}
    for name, workload in WORKLOADS.items():
        reference = _run_one(ReferenceEventLoop, workload)
        calendar = _run_one(EventLoop, workload)
        results[name] = {
            "calendar": calendar,
            "reference": reference,
            "speedup": round(
                calendar["events_per_second"] / reference["events_per_second"], 2
            ),
        }
    return results


def main() -> int:
    output = DEFAULT_OUTPUT
    argv = sys.argv[1:]
    if "--output" in argv:
        output = pathlib.Path(argv[argv.index("--output") + 1])
    results = _measure()
    report = {
        "benchmark": "simnet event loop, calendar queue vs seed reference heap",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "units": "events per second of virtual-time dispatch (gc disabled in window)",
        "speedup_floors": SPEEDUP_FLOORS,
        "absolute_floors_events_per_second": ABSOLUTE_FLOORS_EV_S,
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in results.items():
        cal, ref = entry["calendar"], entry["reference"]
        print(
            f"{name:18s} calendar {cal['events_per_second']:>12,.0f} ev/s"
            f"  (seed {ref['events_per_second']:>12,.0f} ev/s, {entry['speedup']:.2f}x,"
            f" peak depth {cal['peak_queue_depth']:,})"
        )
    print(f"\nwrote {output}")

    failed = []
    for name, floor in SPEEDUP_FLOORS.items():
        if results[name]["speedup"] < floor:
            failed.append(f"{name}: {results[name]['speedup']}x < {floor}x")
    for name, floor in ABSOLUTE_FLOORS_EV_S.items():
        measured = results[name]["calendar"]["events_per_second"]
        if measured < floor:
            failed.append(f"{name}: {measured:,.0f} ev/s < {floor:,.0f} ev/s")
    if failed:
        print("PERF FLOOR VIOLATED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
