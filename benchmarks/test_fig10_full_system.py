"""Figure 10: the complete system — PProx in front of Harness.

Paper claims reproduced here:
* full-system latency ~ Figure 8 (proxy) + Figure 9 (Harness) sums;
* for 250-750 RPS, medians sit between ~50 and 300 ms, meeting the
  SLO (median < 300 ms);
* at 50 RPS shuffling dominates, especially for larger deployments;
* at 1000 RPS the median stays below 300 ms while the maximum grows.
"""

from __future__ import annotations

from conftest import RUNS, SEED

from repro.cluster.deployments import MACRO_FULL
from repro.experiments.figures import figure10
from repro.experiments.report import render_figure
from repro.workload.scenario import ScenarioTimings

GRID = [50, 250, 500, 750, 1000]
TIMINGS = ScenarioTimings(feedback_seconds=10.0, query_seconds=30.0, trim_seconds=8.0)
SCALE = 0.005


def test_figure10(once):
    data = once(
        figure10, seed=SEED, runs=RUNS, timings=TIMINGS, rps_grid=GRID,
        workload_scale=SCALE,
    )
    print()
    print(render_figure(data))

    # Rated throughputs complete unsaturated.
    for name in ("f1", "f2", "f3", "f4"):
        config = MACRO_FULL[name]
        assert not data.point(name, config.max_rps).saturated

    # SLO: median below 300 ms at every rated working point >= 250 RPS.
    for name, rps in [("f1", 250), ("f2", 500), ("f3", 750), ("f4", 1000)]:
        median = data.point(name, rps).summary.median
        assert median < 0.300, f"{name}@{rps}: median {median * 1000:.0f} ms breaks SLO"

    # Shuffling dominates at 50 RPS: f4 (8 thin proxy instances) pays
    # more than f1 (1 pair concentrating the traffic).
    assert data.point("f4", 50).summary.median > data.point("f1", 50).summary.median

    # The max grows with load but the median stays bounded (paper: at
    # 1000 RPS max approaches 450 ms, median < 200 ms).
    top = data.point("f4", 1000).summary
    assert top.maximum > top.median * 1.5
