"""Figure 7: the latency impact of request/response shuffling.

Paper claims reproduced here:
* shuffling cost falls as throughput rises (buffers fill faster);
* S=10 costs more than S=5, which costs more than no shuffling;
* at 50 RPS, S=10 latency is high relative to SLOs, while at 250 RPS
  the median stays well below 200 ms.
"""

from __future__ import annotations

from conftest import MICRO_DURATION, MICRO_TRIM, RUNS, SEED

from repro.experiments.figures import figure7
from repro.experiments.report import render_figure

RPS_GRID = [50, 150, 250]


def test_figure7(once):
    data = once(
        figure7, seed=SEED, runs=RUNS, duration=MICRO_DURATION, trim=MICRO_TRIM,
        rps_grid=RPS_GRID,
    )
    print()
    print(render_figure(data))

    for rps in RPS_GRID:
        no_shuffle = data.point("m3", rps).summary.median
        s5 = data.point("m5", rps).summary.median
        s10 = data.point("m6", rps).summary.median
        assert no_shuffle < s5 < s10, f"shuffle ordering broken at {rps} RPS"

    # Shuffling latency shrinks with offered load.
    s10_by_rps = [data.point("m6", rps).summary.median for rps in RPS_GRID]
    assert s10_by_rps[0] > s10_by_rps[-1]

    # At 250 RPS the shuffled median is well below 200 ms.
    assert data.point("m6", 250).summary.median < 0.200
    # At 50 RPS, S=10 is expensive (SLO-hostile), S=5 usable.
    assert data.point("m6", 50).summary.median > 2 * data.point("m5", 50).summary.median * 0.5
    assert data.point("m5", 50).summary.median < 0.300
