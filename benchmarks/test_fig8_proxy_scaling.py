"""Figure 8: horizontal scaling of the PProx proxy service.

Paper claims reproduced here:
* each additional UA+IA instance pair sustains another ~250 RPS;
* with 4 pairs, 1000 RPS completes with median latency under 200 ms;
* over-provisioned deployments (m9 at 250 RPS) pay extra shuffle
  latency because per-instance traffic is too thin.
"""

from __future__ import annotations

from conftest import MICRO_DURATION, MICRO_TRIM, RUNS, SEED

from repro.cluster.deployments import MICRO_CONFIGS
from repro.experiments.figures import figure8
from repro.experiments.report import render_figure
from repro.experiments.runner import run_micro

GRID = [50, 250, 500, 750, 1000]


def test_figure8(once):
    data = once(
        figure8, seed=SEED, runs=RUNS, duration=MICRO_DURATION, trim=MICRO_TRIM,
        rps_grid=GRID,
    )
    print()
    print(render_figure(data))

    # Every configuration sustains its Table 2 maximum unsaturated.
    for name in ("m6", "m7", "m8", "m9"):
        config = MICRO_CONFIGS[name]
        top = data.point(name, config.max_rps)
        assert not top.saturated, f"{name} saturated at its rated {config.max_rps} RPS"

    # m9 at 1000 RPS: median under 200 ms (paper: "consistently under
    # 200 ms for 1.000 RPS").
    assert data.point("m9", 1000).summary.median < 0.200

    # Over-provisioning penalty: m9 at 250 RPS is slower than m6 at
    # 250 RPS (shuffle buffers fill 4x slower per instance).
    assert data.point("m9", 250).summary.median > data.point("m6", 250).summary.median


def test_single_pair_saturates_past_250(once):
    """The complement of the ladder: m6 cannot take 2x its rating."""
    result = once(
        run_micro, MICRO_CONFIGS["m6"], 500, seed=SEED, runs=1,
        duration=MICRO_DURATION, trim=MICRO_TRIM,
    )
    assert result.saturated
