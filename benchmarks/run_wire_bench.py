"""Emit ``BENCH_wire.json``: binary wire codec vs JSON, batched envelopes.

Measures the zero-copy binary wire protocol introduced by the codec PR
against the seed JSON wire on the protected-hop payload paths, and the
batch envelope (one hybrid RSA-OAEP seal per shuffle flush) against
the seed's per-request envelopes.  Results go to ``BENCH_wire.json``
at the repository root.  Future PRs touching the wire stack should
re-run this script and must not regress the recorded numbers::

    PYTHONPATH=src python benchmarks/run_wire_bench.py

Acceptance floors from the codec PR:

* >= 5x encode+decode throughput on the recommendation item payload
  (the volume path: fixed-size identifier lists, §4.3) — binary
  concatenates and slices raw 48-byte blobs where JSON pays base64
  both ways plus list serialization;
* >= 2.5x on the response-frame round trip (the 1 KiB sealed
  recommendation blob: base64 inflation + JSON string escaping vs a
  zero-copy length-prefixed field; measures ~3.1x, floored with CI
  headroom);
* >= 3x per-request envelope cost reduction for ``seal_batch``/
  ``open_batch`` over ``seal_each``/``open_each`` at the default
  shuffle size S=16 (RSA-1024, :class:`RealCryptoProvider` — the
  paper's crypto configuration);
* >= 0.9x (a no-regression guard, not a speedup claim) on the small
  request-frame round trip: tiny frames are dominated by message
  construction, which both codecs pay, and the C-accelerated ``json``
  module is genuinely fast there — the binary win on that path is
  the wire *size* (no base64), which the report also records.
"""

from __future__ import annotations

import json
import pathlib
import platform
import random
import sys
import time
import timeit

from repro.crypto.envelope import FIXED_ID_BYTES, EnvelopeCodec, pad_item_list
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import RealCryptoProvider
from repro.rest.codec import BINARY_WIRE_CODEC, JSON_WIRE_CODEC
from repro.rest.messages import Request, Response, Verb

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_wire.json"

SHUFFLE_SIZE = 16  # the paper's default S
RSA_BITS = 1024
RSA_CIPHERTEXT_BYTES = RSA_BITS // 8

FLOORS = {
    "item_payload_roundtrip": 5.0,
    "response_frame_roundtrip": 2.5,
    f"envelope_flush_S{SHUFFLE_SIZE}_rsa{RSA_BITS}": 3.0,
    "request_frame_roundtrip": 0.9,
}


def _best_us(fn, number: int, repeat: int = 5) -> float:
    """Best-of-*repeat* mean microseconds per call of *fn*."""
    timer = timeit.Timer(fn)
    return min(timer.repeat(repeat=repeat, number=number)) / number * 1e6


def _deterministic_bytes(rng: random.Random, length: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(length))


def _fixtures(rng: random.Random) -> dict:
    """Deterministic stand-ins for the crypto-boundary values."""
    items = pad_item_list([f"item-{index:04d}" for index in range(10)])
    item_blobs = EnvelopeCodec.encode_identifiers(items)
    return {
        "pseudonym": _deterministic_bytes(rng, FIXED_ID_BYTES),
        "tmpkey_sealed": _deterministic_bytes(rng, RSA_CIPHERTEXT_BYTES),
        "item_blobs": item_blobs,
        # sym_encrypt(k_u, pack_items(...)) sized: payload + IV.
        "response_blob": _deterministic_bytes(
            rng, len(item_blobs) * FIXED_ID_BYTES + 16
        ),
    }


def _make_request(codec, fixtures) -> Request:
    """A UA->IA ``get(u)`` as it leaves the shuffler: pseudonym text,
    sealed temporary key, stamped deadline and trace id."""
    return Request(
        verb=Verb.GET,
        fields={
            "user": EnvelopeCodec.wire_text(fixtures["pseudonym"]),
            "tmpkey": codec.wire_value(fixtures["tmpkey_sealed"]),
            "deadline": "000004.50000",
            "trace": "0123456789abcdef",
        },
        request_id=1,
        client_address="ua-0",
    )


def _codec_cases(fixtures) -> dict:
    """Each case: (binary closure, json closure, timeit number)."""
    item_blobs = fixtures["item_blobs"]
    response_blob = fixtures["response_blob"]

    def item_payload(codec):
        # IA encodes the padded identifier list; the client-side
        # library slices it back out after sym_decrypt.
        def run():
            codec.unpack_items(codec.pack_items(item_blobs))
        return run

    def response_frame(codec):
        # IA -> UA leg of a recommendation: blob to wire form, frame
        # encode, frame decode, blob back to the crypto boundary.
        def run():
            response = Response(
                status=200,
                fields={"blob": codec.wire_value(response_blob)},
                request_id=1,
            )
            decoded = codec.decode_response(codec.encode_response(response))
            codec.blob_value(decoded.fields["blob"])
        return run

    def request_frame(codec):
        request = _make_request(codec, fixtures)

        def run():
            decoded = codec.decode_request(
                codec.encode_request(request), verb=Verb.GET
            )
            codec.blob_value(decoded.fields["tmpkey"])
        return run

    return {
        "item_payload_roundtrip": (
            item_payload(BINARY_WIRE_CODEC), item_payload(JSON_WIRE_CODEC), 2000,
        ),
        "response_frame_roundtrip": (
            response_frame(BINARY_WIRE_CODEC), response_frame(JSON_WIRE_CODEC), 2000,
        ),
        "request_frame_roundtrip": (
            request_frame(BINARY_WIRE_CODEC), request_frame(JSON_WIRE_CODEC), 2000,
        ),
    }


def _measure_codecs(fixtures) -> dict:
    results = {}
    for name, (binary_fn, json_fn, number) in _codec_cases(fixtures).items():
        binary_us = _best_us(binary_fn, number)
        json_us = _best_us(json_fn, number)
        results[name] = {
            "binary_us": round(binary_us, 3),
            "json_us": round(json_us, 3),
            "speedup": round(json_us / binary_us, 2),
        }
    return results


def _wire_sizes(fixtures) -> dict:
    """Bytes on the wire per codec for the two hot messages."""
    sizes = {}
    for codec in (JSON_WIRE_CODEC, BINARY_WIRE_CODEC):
        request = _make_request(codec, fixtures)
        response = Response(
            status=200,
            fields={"blob": codec.wire_value(fixtures["response_blob"])},
            request_id=1,
        )
        sizes[codec.name] = {
            "request_bytes": codec.request_size_bytes(request),
            "response_bytes": codec.response_size_bytes(response),
        }
    sizes["reduction"] = {
        "request": round(
            1 - sizes["binary"]["request_bytes"] / sizes["json"]["request_bytes"], 3
        ),
        "response": round(
            1 - sizes["binary"]["response_bytes"] / sizes["json"]["response_bytes"], 3
        ),
    }
    return sizes


def _measure_envelopes(rng: random.Random, fixtures) -> dict:
    """Batch envelope vs per-request envelopes at one shuffle flush."""
    provider = RealCryptoProvider()
    keys = KeyFactory(
        rsa_bits=RSA_BITS,
        rng_int=rng.randrange,
        rng_bytes=lambda n: _deterministic_bytes(rng, n),
    ).layer_keys()
    public = keys.public_material
    envelopes = EnvelopeCodec(provider)

    frames = [
        BINARY_WIRE_CODEC.encode_request(
            Request(
                verb=Verb.GET,
                fields={
                    "user": EnvelopeCodec.wire_text(
                        _deterministic_bytes(rng, FIXED_ID_BYTES)
                    ),
                    "tmpkey": _deterministic_bytes(rng, RSA_CIPHERTEXT_BYTES),
                },
                request_id=index,
                client_address="ua-0",
            )
        )
        for index in range(SHUFFLE_SIZE)
    ]

    def batch():
        blob = envelopes.seal_batch(public, frames)
        envelopes.open_batch(keys, blob)

    def per_request():
        blobs = envelopes.seal_each(public, frames)
        envelopes.open_each(keys, blobs)

    batch_us = _best_us(batch, number=5, repeat=3)
    each_us = _best_us(per_request, number=2, repeat=3)
    return {
        f"envelope_flush_S{SHUFFLE_SIZE}_rsa{RSA_BITS}": {
            "batch_us": round(batch_us, 1),
            "per_request_us": round(each_us, 1),
            "batch_amortized_per_request_us": round(batch_us / SHUFFLE_SIZE, 1),
            "seed_per_request_us": round(each_us / SHUFFLE_SIZE, 1),
            "speedup": round(each_us / batch_us, 2),
        }
    }


def main() -> int:
    rng = random.Random(20260808)
    fixtures = _fixtures(rng)
    results = {}
    results.update(_measure_codecs(fixtures))
    results.update(_measure_envelopes(rng, fixtures))
    report = {
        "benchmark": "binary wire codec vs seed JSON wire; batch vs per-request envelopes",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "units": "microseconds per call (best of timeit repeats)",
        "shuffle_size": SHUFFLE_SIZE,
        "rsa_bits": RSA_BITS,
        "results": results,
        "wire_sizes": _wire_sizes(fixtures),
        "floors": FLOORS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in results.items():
        fast = entry.get("binary_us", entry.get("batch_us"))
        slow = entry.get("json_us", entry.get("per_request_us"))
        print(f"{name:36s} {fast:>12.1f} us"
              f"  (seed {slow:>12.1f} us, {entry['speedup']:.1f}x)")
    sizes = report["wire_sizes"]
    print(f"{'wire size: get request':36s} {sizes['binary']['request_bytes']:>8d} B"
          f"  (seed {sizes['json']['request_bytes']:>8d} B,"
          f" -{sizes['reduction']['request']:.0%})")
    print(f"{'wire size: items response':36s} {sizes['binary']['response_bytes']:>8d} B"
          f"  (seed {sizes['json']['response_bytes']:>8d} B,"
          f" -{sizes['reduction']['response']:.0%})")
    print(f"\nwrote {OUTPUT}")
    failed = [
        f"{name}: {results[name]['speedup']}x < {floor}x"
        for name, floor in FLOORS.items()
        if results[name]["speedup"] < floor
    ]
    if failed:
        print("SPEEDUP FLOOR VIOLATED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
