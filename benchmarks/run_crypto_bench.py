"""Emit ``BENCH_crypto.json``: optimized-vs-seed crypto speedups.

Measures the symmetric hot path rebuilt in the crypto overhaul PR
against the straight-line seed implementation preserved in
:mod:`repro.crypto.reference`, and writes the results to
``BENCH_crypto.json`` at the repository root.  Future PRs touching the
crypto stack should re-run this script and must not regress the
recorded speedups::

    PYTHONPATH=src python benchmarks/run_crypto_bench.py

Acceptance floors from the overhaul PR: >= 5x on
``RealCryptoProvider.pseudonymize`` (hot ids) and >= 3x on
``ctr_transform`` over 1 KiB payloads.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
import timeit

from repro.crypto import ctr
from repro.crypto.aes import AES
from repro.crypto.provider import RealCryptoProvider
from repro.crypto.reference import (
    ReferenceAES,
    reference_ctr_transform,
    reference_det_encrypt,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_crypto.json"

KEY = bytes(range(32))
IV = bytes(16)
BLOCK = bytes(range(16))
PAYLOAD_1K = bytes(i % 256 for i in range(1024))
HOT_IDS = [b"user-%011d" % i for i in range(64)]


def _best_us(fn, number: int, repeat: int = 5) -> float:
    """Best-of-*repeat* mean microseconds per call of *fn*."""
    timer = timeit.Timer(fn)
    return min(timer.repeat(repeat=repeat, number=number)) / number * 1e6


def _measure() -> dict:
    cipher = AES(KEY)
    reference_cipher = ReferenceAES(KEY)

    provider = RealCryptoProvider()
    for identifier in HOT_IDS:  # steady state: memo + keystream warm
        provider.pseudonymize(KEY, identifier)

    def pseudonymize_hot():
        for identifier in HOT_IDS:
            provider.pseudonymize(KEY, identifier)

    def reference_pseudonymize_hot():
        for identifier in HOT_IDS:
            reference_det_encrypt(KEY, identifier)

    cases = {
        "block_encrypt": (
            lambda: cipher.encrypt_block(BLOCK),
            lambda: reference_cipher.encrypt_block(BLOCK),
            2000,
        ),
        "ctr_transform_1KiB": (
            lambda: ctr.ctr_transform(KEY, IV, PAYLOAD_1K),
            lambda: reference_ctr_transform(KEY, IV, PAYLOAD_1K),
            50,
        ),
        "det_encrypt_32B": (
            lambda: ctr.det_encrypt(KEY, b"user-0000000000000000000042!!!!!"),
            lambda: reference_det_encrypt(KEY, b"user-0000000000000000000042!!!!!"),
            2000,
        ),
        "real_provider_pseudonymize_hot64": (
            pseudonymize_hot,
            reference_pseudonymize_hot,
            20,
        ),
    }

    results = {}
    for name, (optimized, reference, number) in cases.items():
        optimized_us = _best_us(optimized, number)
        reference_us = _best_us(reference, max(number // 10, 5))
        results[name] = {
            "optimized_us": round(optimized_us, 3),
            "reference_us": round(reference_us, 3),
            "speedup": round(reference_us / optimized_us, 2),
        }
    return results


def main() -> int:
    results = _measure()
    report = {
        "benchmark": "crypto hot path, optimized vs seed reference",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "units": "microseconds per call (best of 5 timeit repeats)",
        "results": results,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    for name, entry in results.items():
        print(f"{name:36s} {entry['optimized_us']:>12.1f} us"
              f"  (seed {entry['reference_us']:>12.1f} us, {entry['speedup']:.1f}x)")
    print(f"\nwrote {OUTPUT}")
    floors = {"real_provider_pseudonymize_hot64": 5.0, "ctr_transform_1KiB": 3.0}
    failed = [
        f"{name}: {results[name]['speedup']}x < {floor}x"
        for name, floor in floors.items()
        if results[name]["speedup"] < floor
    ]
    if failed:
        print("SPEEDUP FLOOR VIOLATED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
