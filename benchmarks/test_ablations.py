"""Ablations of PProx design choices (DESIGN.md §6).

Not figures from the paper — sensitivity studies of the knobs the
design fixes: shuffle flush timeout, load-balancing policy, the
hardened client hop's cost, and crypto provider overhead (host CPU,
not simulated latency).
"""

from __future__ import annotations

import time

from conftest import SEED

from repro.cluster.deployments import MICRO_CONFIGS
from repro.crypto.envelope import encode_identifier
from repro.crypto.provider import FastCryptoProvider, RealCryptoProvider
from repro.experiments.runner import run_micro
from repro.proxy.config import PProxConfig

DURATION = 15.0
TRIM = 4.0
M6 = MICRO_CONFIGS["m6"]
M7 = MICRO_CONFIGS["m7"]


def test_ablation_shuffle_timeout(benchmark):
    """Shorter flush timers cap worst-case latency at thin traffic but
    weaken the anonymity set (timer flushes release partial batches)."""

    def sweep():
        return {
            timeout: run_micro(
                M6, 50, seed=SEED, runs=1, duration=DURATION, trim=TRIM,
                shuffle_timeout=timeout,
            )
            for timeout in (0.05, 0.25, 1.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: shuffle flush timeout at 50 RPS (S=10) ==")
    medians = {}
    for timeout, result in results.items():
        medians[timeout] = result.summary().median
        print(f"timeout={timeout:5.2f}s  median={medians[timeout] * 1000:7.1f} ms")
    assert medians[0.05] < medians[0.25] <= medians[1.0]


def test_ablation_balancing_policy(benchmark):
    """Random vs round-robin vs least-pending at a scaled deployment."""

    def sweep():
        results = {}
        for policy in ("random", "round-robin", "least-pending"):
            override = PProxConfig(
                shuffle_size=10, ua_instances=2, ia_instances=2, balancing=policy
            )
            results[policy] = run_micro(
                M7, 500, seed=SEED, runs=1, duration=DURATION, trim=TRIM,
                pprox_override=override,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: load-balancing policy (m7-shaped, 500 RPS) ==")
    for policy, result in results.items():
        print(f"{policy:14s} median={result.summary().median * 1000:7.1f} ms"
              f" sat={result.saturated}")
    assert all(not r.saturated for r in results.values())


def test_ablation_hardened_client_hop(benchmark):
    """The hardening extension costs little on top of m6."""

    def sweep():
        plain = run_micro(M6, 250, seed=SEED, runs=1, duration=DURATION, trim=TRIM)
        hardened = run_micro(
            M6, 250, seed=SEED, runs=1, duration=DURATION, trim=TRIM,
            pprox_override=PProxConfig(shuffle_size=10, harden_client_hop=True),
        )
        return plain, hardened

    plain, hardened = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== ablation: hardened client hop at 250 RPS (S=10) ==")
    print(f"paper protocol   median={plain.summary().median * 1000:7.1f} ms")
    print(f"hardened hop     median={hardened.summary().median * 1000:7.1f} ms")
    assert not hardened.saturated
    assert hardened.summary().median < 2 * plain.summary().median


def test_ablation_crypto_provider_host_cost(benchmark):
    """Real AES/RSA vs the hash-based fast provider: host CPU per
    protocol operation (simulated latency is identical by design)."""

    def measure():
        timings = {}
        identifier = encode_identifier("user-123456")
        for provider in (RealCryptoProvider(), FastCryptoProvider()):
            key = bytes(range(32))
            start = time.perf_counter()
            for _ in range(300):
                pseudonym = provider.pseudonymize(key, identifier)
                provider.depseudonymize(key, pseudonym)
            timings[provider.name] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("== ablation: pseudonymization host cost (300 roundtrips) ==")
    for name, elapsed in timings.items():
        print(f"{name:5s} {elapsed * 1000:8.1f} ms")
    assert timings["fast"] < timings["real"]


def test_ablation_padding_wire_cost(benchmark):
    """Padding all responses to 20 entries costs bandwidth; measure
    the constant wire size against an unpadded JSON encoding."""

    def measure():
        import json

        from repro.crypto.envelope import b64, pad_item_list

        padded_sizes = set()
        unpadded_sizes = set()
        for count in (1, 5, 20):
            items = [f"movie-{n}" for n in range(count)]
            padded = [b64(encode_identifier(i)) for i in pad_item_list(items)]
            padded_sizes.add(len(json.dumps(padded)))
            unpadded_sizes.add(len(json.dumps(items)))
        return padded_sizes, unpadded_sizes

    padded_sizes, unpadded_sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("== ablation: response padding wire cost ==")
    print(f"padded body sizes:   {sorted(padded_sizes)} (constant)")
    print(f"unpadded body sizes: {sorted(unpadded_sizes)} (leaks count)")
    assert len(padded_sizes) == 1
    assert len(unpadded_sizes) == 3
