"""Table 2: micro-benchmark configuration matrix.

Regenerates the table's rows and validates that every configuration
fits the 27-node testbed and that the feature/scale ladder matches
the paper exactly.
"""

from __future__ import annotations

from repro.cluster.deployments import CLUSTER_NODE_BUDGET, MICRO_CONFIGS, cluster_plan
from repro.experiments.report import render_table2


def test_table2(benchmark):
    text = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    print()
    print(text)

    rows = {name: config for name, config in MICRO_CONFIGS.items()}
    # The exact Table 2 matrix.
    expected = {
        # name: (enc, item_pseudo, sgx, S, UA, IA, RPS)
        "m1": (False, False, False, 0, 1, 1, 250),
        "m2": (True, True, False, 0, 1, 1, 250),
        "m3": (True, True, True, 0, 1, 1, 250),
        "m4": (True, False, True, 0, 1, 1, 250),
        "m5": (True, True, True, 5, 1, 1, 250),
        "m6": (True, True, True, 10, 1, 1, 250),
        "m7": (True, True, True, 10, 2, 2, 500),
        "m8": (True, True, True, 10, 3, 3, 750),
        "m9": (True, True, True, 10, 4, 4, 1000),
    }
    for name, row in expected.items():
        config = rows[name]
        assert (
            config.encryption,
            config.item_pseudonymization,
            config.sgx,
            config.shuffle_size,
            config.ua_instances,
            config.ia_instances,
            config.max_rps,
        ) == row, f"Table 2 row {name} mismatch"
        _, nodes = cluster_plan(name)
        assert nodes <= CLUSTER_NODE_BUDGET
