"""Table 3: macro-benchmark configuration matrix.

Regenerates the rows and validates the node accounting of §8.2: LRS
deployments of 7-16 nodes, PProx adding 30 % (f1) to 50 % (f4) of
infrastructure on top.
"""

from __future__ import annotations

import pytest

from repro.cluster.deployments import (
    CLUSTER_NODE_BUDGET,
    MACRO_BASELINES,
    MACRO_FULL,
    cluster_plan,
)
from repro.experiments.report import render_table3


def test_table3(benchmark):
    text = benchmark.pedantic(render_table3, rounds=1, iterations=1)
    print()
    print(text)

    expected_baselines = {
        "b1": (3, 7, 250),
        "b2": (6, 10, 500),
        "b3": (9, 13, 750),
        "b4": (12, 16, 1000),
    }
    for name, (frontends, lrs_nodes, rps) in expected_baselines.items():
        config = MACRO_BASELINES[name]
        assert (config.frontends, config.lrs_nodes, config.max_rps) == (
            frontends, lrs_nodes, rps,
        )

    expected_full = {
        "f1": (3, 1, 1, 250),
        "f2": (6, 2, 2, 500),
        "f3": (9, 3, 3, 750),
        "f4": (12, 4, 4, 1000),
    }
    for name, (frontends, ua, ia, rps) in expected_full.items():
        config = MACRO_FULL[name]
        assert (config.frontends, config.ua_instances, config.ia_instances,
                config.max_rps) == (frontends, ua, ia, rps)
        _, nodes = cluster_plan(name)
        assert nodes <= CLUSTER_NODE_BUDGET

    # §8.2: "The infrastructure cost of PProx ranges from 30 % (f1) to
    # 50 % (f4) additional nodes compared to privacy-unprotected
    # Harness."
    assert MACRO_FULL["f1"].proxy_overhead == pytest.approx(0.30, abs=0.02)
    assert MACRO_FULL["f4"].proxy_overhead == pytest.approx(0.50, abs=0.01)
