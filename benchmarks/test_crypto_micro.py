"""Crypto hot-path microbenchmarks (pytest-benchmark).

Times the primitives the proxy layers hit on every simulated request —
block encryption, deterministic/randomized CTR, pseudonym maps, and
RSA-OAEP decryption — across all three provider tiers.  These are real
wall-clock benchmarks (unlike the figure benchmarks, which time the
simulator); run them with::

    PYTHONPATH=src python -m pytest benchmarks/test_crypto_micro.py

``benchmarks/run_crypto_bench.py`` distils the same measurements into
``BENCH_crypto.json`` (optimized vs. seed-reference speedups) so the
perf trajectory is regressable across PRs.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import ctr
from repro.crypto.aes import AES
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import (
    FastCryptoProvider,
    RealCryptoProvider,
    SimCryptoProvider,
)
from repro.crypto.reference import ReferenceAES, reference_ctr_transform

KEY = bytes(range(32))
BLOCK = bytes(range(16))
IDENTIFIER = b"user-0000000042!"  # 16 bytes, the typical id size
PAYLOAD_1K = bytes(i % 256 for i in range(1024))
IV = bytes(16)

#: Hot identifier pool sized well under the pseudonym memo, matching
#: the MovieLens property that a small core of users/items dominates.
HOT_IDS = [b"user-%011d" % i for i in range(64)]

PROVIDERS = {
    "real": RealCryptoProvider,
    "fast": FastCryptoProvider,
    "sim": SimCryptoProvider,
}


def _seeded_rng(seed: int = 7):
    stream = random.Random(seed)
    return lambda n: stream.getrandbits(8 * n).to_bytes(n, "big") if n else b""


@pytest.fixture(scope="module")
def layer_keys():
    """One deterministic 1024-bit RSA keypair shared by the module."""
    stream = random.Random(11)
    factory = KeyFactory(
        rsa_bits=1024,
        rng_int=lambda bound: stream.randrange(bound),
        rng_bytes=_seeded_rng(13),
    )
    return factory.layer_keys()


def _bench(benchmark, fn, *args):
    return benchmark.pedantic(fn, args=args, rounds=20, iterations=5, warmup_rounds=2)


# ------------------------------------------------------------ block cipher


def test_block_encrypt(benchmark):
    cipher = AES(KEY)
    _bench(benchmark, cipher.encrypt_block, BLOCK)


def test_block_decrypt(benchmark):
    cipher = AES(KEY)
    _bench(benchmark, cipher.decrypt_block, BLOCK)


def test_block_encrypt_reference(benchmark):
    """Seed baseline: the per-byte cipher the T-tables replaced."""
    cipher = ReferenceAES(KEY)
    _bench(benchmark, cipher.encrypt_block, BLOCK)


# -------------------------------------------------------------- CTR modes


def test_det_encrypt_identifier(benchmark):
    ctr.det_encrypt(KEY, IDENTIFIER)  # warm the keystream cache
    _bench(benchmark, ctr.det_encrypt, KEY, IDENTIFIER)


def test_ctr_transform_1k(benchmark):
    _bench(benchmark, ctr.ctr_transform, KEY, IV, PAYLOAD_1K)


def test_ctr_transform_1k_reference(benchmark):
    _bench(benchmark, reference_ctr_transform, KEY, IV, PAYLOAD_1K)


def test_rand_encrypt_1k(benchmark):
    rng = _seeded_rng()
    _bench(benchmark, ctr.rand_encrypt, KEY, PAYLOAD_1K, rng)


# ------------------------------------------------------------- pseudonyms


@pytest.mark.parametrize("tier", sorted(PROVIDERS))
def test_pseudonymize_hot_ids(benchmark, tier):
    provider = PROVIDERS[tier](rng_bytes=_seeded_rng())
    for identifier in HOT_IDS:
        provider.pseudonymize(KEY, identifier)  # warm memos/tables

    def run():
        for identifier in HOT_IDS:
            provider.pseudonymize(KEY, identifier)

    benchmark.pedantic(run, rounds=20, iterations=2, warmup_rounds=2)


def test_feistel_pseudonym_roundtrip(benchmark):
    provider = FastCryptoProvider(rng_bytes=_seeded_rng())

    def run():
        pseudonym = provider.pseudonymize(KEY, IDENTIFIER)
        provider.depseudonymize(KEY, pseudonym)

    benchmark.pedantic(run, rounds=20, iterations=5, warmup_rounds=2)


# ------------------------------------------------------------ asymmetric


@pytest.mark.parametrize("tier", sorted(PROVIDERS))
def test_asym_decrypt(benchmark, tier, layer_keys):
    provider = PROVIDERS[tier](rng_bytes=_seeded_rng())
    blob = provider.asym_encrypt(layer_keys.public_material, IDENTIFIER)

    def run():
        return provider.asym_decrypt(layer_keys, blob)

    assert run() == IDENTIFIER
    benchmark.pedantic(run, rounds=10, iterations=2, warmup_rounds=1)
