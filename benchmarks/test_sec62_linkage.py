"""§6.2: the shuffling linkage bound 1/(S*I), measured empirically.

Monte-Carlo reproduction of the analysis: the adversary's success at
matching an inbound request to the corresponding outbound message is
inverse in both the shuffle size S and the number of downstream
instances I.
"""

from __future__ import annotations

import pytest

from repro.privacy.linkage import ShuffleLinkageExperiment

CASES = [(5, 1), (10, 1), (10, 2), (10, 4)]


def test_linkage_bound(benchmark):
    def run_all():
        return [
            ShuffleLinkageExperiment(shuffle_size=s, instances=i, seed=29).run(4000)
            for s, i in CASES
        ]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("== §6.2 linkage probability: empirical vs 1/(S*I) ==")
    for outcome in outcomes:
        print(
            f"S={outcome.shuffle_size:3d} I={outcome.instances}"
            f"  empirical={outcome.empirical_probability:.4f}"
            f"  theory={outcome.theoretical_probability:.4f}"
        )
        theory = outcome.theoretical_probability
        sigma = (theory * (1 - theory) / outcome.trials) ** 0.5
        assert abs(outcome.empirical_probability - theory) < 4 * sigma + 1e-9

    # Monotonicity across the ladder.
    probabilities = [o.empirical_probability for o in outcomes]
    assert probabilities == sorted(probabilities, reverse=True)
