"""Shared benchmark settings.

Each benchmark regenerates one of the paper's tables or figures from
scratch.  We use ``benchmark.pedantic`` with a single round: the
interesting output is the reproduced figure (printed to stdout and
checked by shape assertions), not micro-timing of the simulator.

Durations are scaled down from the paper's 1 min + 5 min phases — the
latency *shapes* (feature costs, shuffle behaviour, saturation points)
stabilize well within these windows, and the full-scale settings are a
parameter away (``ScenarioTimings.paper()``).
"""

from __future__ import annotations

import pytest

#: Simulated seconds of query injection per micro measurement.
MICRO_DURATION = 20.0
MICRO_TRIM = 5.0
#: Repetitions aggregated per point (paper: 6).
RUNS = 1
SEED = 11


@pytest.fixture
def once(benchmark):
    """Run a figure builder exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
