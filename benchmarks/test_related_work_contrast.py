"""§9 contrast: encrypted-processing CF vs PProx's proxying.

"Evaluations of privacy-preserving recommendation algorithms based on
encrypted processing by other researchers often yield latencies for
client requests that exceed several seconds" (Basu et al.'s Paillier
Slope One on Google App Engine / AWS) — while PProx adds milliseconds.

We measure the *computational* cost of one encrypted Slope One
prediction over a small rating matrix (real 2048-bit-modulus-squared
modular arithmetic) against the per-request cryptographic work PProx
performs (RSA-OAEP decryptions + AES-CTR passes), on the same host.
The orders-of-magnitude gap the paper cites falls out directly, even
before network round-trips and the paper's cloud overheads.
"""

from __future__ import annotations

import random
import time

from repro.crypto.envelope import encode_identifier
from repro.crypto.keys import LayerKeys
from repro.crypto.provider import RealCryptoProvider
from repro.crypto.rsa import generate_keypair
from repro.related.encrypted_slope_one import EncryptedSlopeOne
from repro.related.paillier import generate_paillier_keypair


def _pprox_per_request_seconds() -> float:
    """Host CPU for the crypto of one PProx get (all four legs)."""
    rng = random.Random(3)
    provider = RealCryptoProvider()
    _, ua_private = generate_keypair(1024, lambda b: rng.randrange(b))
    _, ia_private = generate_keypair(1024, lambda b: rng.randrange(b))
    ua_keys = LayerKeys(private_key=ua_private, symmetric_key=bytes(range(32)))
    ia_keys = LayerKeys(private_key=ia_private, symmetric_key=bytes(range(32, 64)))

    user_blob = provider.asym_encrypt(ua_keys.public_material, encode_identifier("u"))
    tmp_key = provider.new_temporary_key()
    tmpkey_blob = provider.asym_encrypt(ia_keys.public_material, tmp_key)
    items = [encode_identifier(f"item-{i}") for i in range(20)]
    pseudo_items = [provider.pseudonymize(ia_keys.symmetric_key, i) for i in items]

    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        # UA: decrypt user, pseudonymize.
        plain_user = provider.asym_decrypt(ua_keys, user_blob)
        provider.pseudonymize(ua_keys.symmetric_key, plain_user)
        # IA: decrypt k_u; response: de-pseudonymize 20 + re-encrypt.
        recovered = provider.asym_decrypt(ia_keys, tmpkey_blob)
        clear = [provider.depseudonymize(ia_keys.symmetric_key, p) for p in pseudo_items]
        provider.sym_encrypt(recovered, b"".join(clear))
    return (time.perf_counter() - start) / rounds


def _encrypted_cf_per_request_seconds() -> float:
    """Host CPU for one encrypted Slope One prediction (50-item user
    profile, 2048-bit Paillier as in Basu et al.'s deployments)."""
    rng = random.Random(4)
    public, private = generate_paillier_keypair(2048, lambda b: rng.randrange(b))
    cloud = EncryptedSlopeOne(public=public)
    profile = {f"item-{i}": float(1 + i % 5) for i in range(50)}
    encrypted = EncryptedSlopeOne.client_encrypt_ratings(public, profile)
    # Ingest one co-rater so deviations exist (counted separately: this
    # is the feedback path, not the query path).
    cloud.submit_user_ratings("peer", encrypted)
    cloud.submit_user_ratings("querier", encrypted)

    start = time.perf_counter()
    result = cloud.predict_encrypted("querier", "item-0")
    assert result is not None
    EncryptedSlopeOne.decrypt_prediction(private, result[0], result[1])
    return time.perf_counter() - start


def test_orders_of_magnitude_gap(benchmark):
    def measure():
        return _pprox_per_request_seconds(), _encrypted_cf_per_request_seconds()

    pprox_cost, encrypted_cost = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("== §9 contrast: per-request cryptographic work (host CPU) ==")
    print(f"PProx proxying (4 legs, 20-item list):  {pprox_cost * 1000:8.1f} ms")
    print(f"encrypted Slope One (1 prediction):     {encrypted_cost * 1000:8.1f} ms")
    print(f"ratio: {encrypted_cost / pprox_cost:.0f}x")
    # The paper's qualitative claim: a solid order-of-magnitude gap.
    assert encrypted_cost > 10 * pprox_cost
