"""Extra reproduction artefacts: latency breakdown, post-vs-get,
recommendation quality.

* Latency breakdown by pipeline stage (operator tracing) at 50 vs
  250 RPS — shows the shuffle buffers dominating at thin traffic and
  amortizing at load, the mechanism behind Figure 7.
* Footnote 9: "the costs of post requests ... systematically follow
  the same trends as for get requests, with only marginally lower
  latencies."
* Recommendation quality of the CCO engine vs baselines — the paper
  treats quality as orthogonal; this table documents that the LRS we
  built is a real recommender, and that pseudonymization does not
  change its metrics.
"""

from __future__ import annotations

from conftest import SEED

from repro.client import PProxClient
from repro.cluster.deployments import MICRO_CONFIGS
from repro.crypto.provider import FastCryptoProvider
from repro.experiments.runner import run_micro
from repro.lrs.baselines import ItemKnnRecommender, PopularityRecommender
from repro.lrs.cco import CcoTrainer
from repro.lrs.evaluation import evaluate_recommender, leave_latest_out_split
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.simnet.tracing import STAGES, BreakdownProbe
from repro.workload.injector import Injector
from repro.workload.movielens import SyntheticMovieLens

M6 = MICRO_CONFIGS["m6"]


def _breakdown_at(rps: float, duration: float = 15.0):
    rng = RngRegistry(seed=SEED)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(loop, network, rng, M6.pprox_config(),
                          lrs_picker=lambda: stub, provider=provider)
    stub.items = make_pseudonymous_payload(
        provider, service.provisioner.layer_keys["IA"].symmetric_key
    )
    probe = BreakdownProbe()
    probe.attach(network)
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    injector = Injector(loop, rng.stream("inj"))
    injector.inject(rps, duration, lambda cb: client.get("user", on_complete=cb))
    loop.run()
    return probe.aggregate()


def test_latency_breakdown(benchmark):
    def run():
        return {rps: _breakdown_at(rps) for rps in (50, 250)}

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("== latency breakdown by stage, m6 (S=10), medians in ms ==")
    header = f"{'rps':>5s} " + " ".join(f"{stage:>12s}" for stage in STAGES)
    print(header)
    for rps, stages in breakdowns.items():
        print(f"{rps:5.0f} " + " ".join(f"{stages[s] * 1000:12.2f}" for s in STAGES))

    # Shuffle stages dominate at 50 RPS...
    thin = breakdowns[50]
    shuffle_share = (thin["ua_inbound"] + thin["ia_outbound"]) / sum(thin.values())
    assert shuffle_share > 0.7
    # ...and shrink substantially at 250 RPS.
    loaded = breakdowns[250]
    assert loaded["ua_inbound"] < thin["ua_inbound"]
    assert loaded["ia_outbound"] < thin["ia_outbound"]


def test_footnote9_posts_marginally_cheaper(benchmark):
    def run():
        gets = run_micro(M6, 150, seed=SEED, runs=1, duration=15.0, trim=4.0,
                         verb="get")
        posts = run_micro(M6, 150, seed=SEED, runs=1, duration=15.0, trim=4.0,
                          verb="post")
        return gets, posts

    gets, posts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("== footnote 9: post vs get (m6, 150 RPS) ==")
    print(f"get  median={gets.summary().median * 1000:6.1f} ms")
    print(f"post median={posts.summary().median * 1000:6.1f} ms")
    # Same trend (same order of magnitude), posts marginally lower.
    assert posts.summary().median < gets.summary().median
    assert posts.summary().median > 0.3 * gets.summary().median


def test_recommendation_quality_table(benchmark):
    def run():
        trace = SyntheticMovieLens(seed=3, scale=0.02)
        train, test = leave_latest_out_split(trace.events, holdout=1, min_history=4)
        model = CcoTrainer(llr_threshold=0.0).train(train)
        results = {
            "cco (UR)": evaluate_recommender(
                lambda h, n: model.recommend(h, n=n), train, test, k=10
            )
        }
        knn = ItemKnnRecommender()
        knn.fit(train)
        results["item-knn"] = evaluate_recommender(
            lambda h, n: knn.recommend(h, n=n), train, test, k=10
        )
        pop = PopularityRecommender()
        pop.fit(train)
        results["popularity"] = evaluate_recommender(
            lambda h, n: pop.recommend(h, n=n), train, test, k=10
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("== recommendation quality (MovieLens-shaped, leave-latest-out) ==")
    for name, result in results.items():
        print(f"{name:12s} {result.row()}")
    assert results["cco (UR)"].ndcg_at_k > results["popularity"].ndcg_at_k
    assert results["cco (UR)"].recall_at_k > 0.25
