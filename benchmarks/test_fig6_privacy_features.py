"""Figure 6: the latency cost of each privacy-enabling feature.

Paper claims reproduced here:
* adding encryption (m1 -> m2) costs more than adding SGX (m2 -> m3);
* SGX adds a few milliseconds of median latency;
* disabling item pseudonymization (m4 vs m3) has negligible impact.
"""

from __future__ import annotations

from conftest import MICRO_DURATION, MICRO_TRIM, RUNS, SEED

from repro.experiments.figures import figure6
from repro.experiments.report import render_figure

RPS_GRID = [50, 150, 250]


def test_figure6(once):
    data = once(
        figure6, seed=SEED, runs=RUNS, duration=MICRO_DURATION, trim=MICRO_TRIM,
        rps_grid=RPS_GRID,
    )
    print()
    print(render_figure(data))

    for rps in RPS_GRID:
        m1 = data.point("m1", rps).summary.median
        m2 = data.point("m2", rps).summary.median
        m3 = data.point("m3", rps).summary.median
        m4 = data.point("m4", rps).summary.median
        # Feature ladder: bare < +encryption < +SGX.
        assert m1 < m2 < m3, f"feature ladder broken at {rps} RPS"
        # Encryption's cost exceeds SGX's cost ("about half as much").
        assert (m2 - m1) > (m3 - m2), f"encryption/SGX cost order broken at {rps} RPS"
        # SGX adds single-digit milliseconds.
        assert 0.0005 < (m3 - m2) < 0.010
        # m4 (no item pseudonymization) is close to m3: negligible.
        assert abs(m3 - m4) < 0.25 * m3

    # No configuration saturates on this grid (Table 2: max 250 RPS).
    for name in ("m1", "m2", "m3", "m4"):
        for rps in RPS_GRID:
            assert not data.point(name, rps).saturated
