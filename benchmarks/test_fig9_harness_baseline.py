"""Figure 9: baseline performance of the Harness LRS (no proxy).

Paper claims reproduced here:
* each block of 3 frontends sustains ~250 RPS before saturation;
* service times stay below 100 ms at low-to-moderate throughput;
* the latency spread widens at high throughput.
"""

from __future__ import annotations

from conftest import RUNS, SEED

from repro.cluster.deployments import MACRO_BASELINES
from repro.experiments.figures import figure9
from repro.experiments.report import render_figure
from repro.experiments.runner import run_baseline
from repro.workload.scenario import ScenarioTimings

GRID = [50, 250, 500, 750, 1000]
TIMINGS = ScenarioTimings(feedback_seconds=10.0, query_seconds=30.0, trim_seconds=8.0)
SCALE = 0.005


def test_figure9(once):
    data = once(
        figure9, seed=SEED, runs=RUNS, timings=TIMINGS, rps_grid=GRID,
        workload_scale=SCALE,
    )
    print()
    print(render_figure(data))

    # Every baseline handles its rated throughput.
    for name in ("b1", "b2", "b3", "b4"):
        config = MACRO_BASELINES[name]
        point = data.point(name, config.max_rps)
        assert not point.saturated, f"{name} saturated at {config.max_rps} RPS"

    # Low/moderate throughput: median service time below 100 ms.
    assert data.point("b1", 50).summary.median < 0.100
    assert data.point("b2", 500).summary.median < 0.100

    # Latency spread widens as load grows toward the knee.
    low = data.point("b4", 50).summary
    high = data.point("b4", 1000).summary
    assert high.iqr > low.iqr


def test_baseline_saturates_past_rating(once):
    result = once(
        run_baseline, MACRO_BASELINES["b1"], 500, seed=SEED, runs=1,
        timings=TIMINGS, workload_scale=SCALE,
    )
    assert result.saturated
